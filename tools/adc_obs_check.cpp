// adc_obs_check — validates the observability artifacts the flow emits.
//
//   adc_obs_check [--trace FILE] [--provenance FILE] [--vcd FILE]
//                 [--bench FILE] [--dse-profile FILE] [--cache-dir DIR]
//                 [--access-log FILE]
//                 [--prom FILE | --prom-fetch HOST:PORT [--prom-out FILE]]
//                 [--catalogue FILE]
//
// Used by the CI smoke test: after `adc_synth --trace-out --provenance
// --vcd` runs a benchmark, this tool proves the three artifacts are
// well-formed without opening Perfetto/GTKWave —
//
//  * trace: Chrome trace_event JSON, every event carries name/ph/pid/tid
//    (plus ts for timed phases), B/E pairs balance per track, complete
//    ("X") events carry a duration, and time never moves backwards on a
//    track;
//  * provenance: parses, names its benchmark/script, and its embedded
//    "reconciliation" check list is empty (the ledgers balance);
//  * vcd: declarations close with $enddefinitions, every value change
//    references a declared identifier code, timestamps are non-decreasing,
//    and at least one change was recorded;
//  * bench: a BENCH JSON report (kind "adc-bench" v1) with a complete
//    environment fingerprint, unique benchmark names and internally
//    consistent statistics (p50 <= p90 <= p99, min <= p50, p99 <= max);
//  * cache-dir: every *.adcstage file in a disk-tier stage cache directory
//    decodes cleanly (magic, version, length, checksum) — an offline
//    integrity audit of what a crashed or fault-injected run left behind;
//  * access-log: the daemon's JSONL access log parses and matches the
//    schema in docs/OBSERVABILITY.md (obs::AccessLog::validate);
//  * dse-profile: a dse_profile.json store (kind "adc-dse-profile" v1,
//    analysis/profile.hpp) — schema plus the internal books: per-point
//    phase segments sum to the attributed total, ok points attribute
//    >= 95% of their cycle time, transistor counts re-derive from the
//    area model, and the frontier/dominated sets partition the simulated
//    ok points with every dominated point naming a frontier dominator;
//  * prom / prom-fetch: a Prometheus text exposition — from a file or
//    scraped live off a daemon's /metrics — satisfies the format
//    invariants (TYPE before samples, cumulative buckets, +Inf == _count);
//    --prom-out saves the scraped body, --catalogue diffs the exposed
//    metric-family set against a committed list, so a family silently
//    appearing or vanishing fails CI.
//
// Exit 0 when every given artifact validates; 1 otherwise with one line per
// problem.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/profile.hpp"
#include "obs/access_log.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "perf/record.hpp"
#include "report/json_parse.hpp"
#include "runtime/disk_cache.hpp"

using namespace adc;

namespace {

int errors = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "adc_obs_check: %s\n", what.c_str());
  ++errors;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void check_trace(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  const JsonValue* events = doc.find("traceEvents");
  if (!events || !events->is_array()) {
    fail(path + ": no traceEvents array");
    return;
  }
  if (events->array.empty()) fail(path + ": empty trace");
  std::map<int, int> depth;
  std::map<int, double> last_ts;
  std::size_t spans = 0;
  for (const JsonValue& ev : events->array) {
    for (const char* key : {"name", "ph", "pid", "tid"})
      if (!ev.find(key)) {
        fail(path + ": event missing '" + key + "'");
        return;
      }
    const std::string& ph = ev.at("ph").string;
    if (ph == "M") continue;  // metadata (process/thread names): no clock
    if (!ev.find("ts")) {
      fail(path + ": event missing 'ts'");
      return;
    }
    int tid = static_cast<int>(ev.at("tid").number);
    double ts = ev.at("ts").number;
    if (last_ts.count(tid) && ts < last_ts[tid])
      fail(path + ": time moved backwards on track " + std::to_string(tid));
    last_ts[tid] = ts;
    if (ph == "B") {
      ++depth[tid];
      ++spans;
    } else if (ph == "E") {
      if (--depth[tid] < 0) {
        fail(path + ": end without begin on track " + std::to_string(tid));
        return;
      }
    } else if (ph == "X") {
      // Complete events (the per-job span trees): self-contained, but a
      // zero/missing duration means a span was exported half-closed.
      const JsonValue* dur = ev.find("dur");
      if (!dur || dur->number <= 0) fail(path + ": complete event without dur");
      ++spans;
    } else if (ph != "C" && ph != "i") {
      fail(path + ": unexpected phase '" + ph + "'");
    }
  }
  for (const auto& [tid, d] : depth)
    if (d != 0) fail(path + ": " + std::to_string(d) + " unclosed span(s) on track " +
                     std::to_string(tid));
  if (spans == 0) fail(path + ": no spans recorded");
}

void check_provenance(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  for (const char* key : {"benchmark", "script", "graph", "stages", "controllers"})
    if (!doc.find(key)) fail(path + ": missing '" + key + "'");
  const JsonValue* rec = doc.find("reconciliation");
  if (!rec || !rec->is_array()) {
    fail(path + ": missing reconciliation check list");
  } else {
    for (const JsonValue& e : rec->array)
      fail(path + ": reconciliation: " + e.string);
  }
}

void check_vcd(const std::string& path) {
  std::istringstream is(slurp(path));
  std::string line;
  std::set<std::string> codes;
  bool defs_closed = false;
  bool in_dump = false;
  long long now = 0, changes = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (!defs_closed) {
      std::istringstream ls(line);
      std::string tok;
      ls >> tok;
      if (tok == "$var") {
        std::string type, width, code;
        ls >> type >> width >> code;
        if (!codes.insert(code).second) fail(path + ": duplicate code " + code);
      } else if (tok == "$enddefinitions") {
        defs_closed = true;
      }
      continue;
    }
    if (line == "$dumpvars") {
      in_dump = true;
      continue;
    }
    if (line == "$end") {
      in_dump = false;
      continue;
    }
    if (line[0] == '#') {
      long long t = std::stoll(line.substr(1));
      if (t < now) fail(path + ": time moved backwards at #" + line.substr(1));
      now = t;
      continue;
    }
    std::string code;
    if (line[0] == 's') {
      code = line.substr(line.rfind(' ') + 1);
    } else if (line[0] == '0' || line[0] == '1') {
      code = line.substr(1);
    } else {
      fail(path + ": unparseable change line '" + line + "'");
      continue;
    }
    if (!codes.count(code)) fail(path + ": change for undeclared code " + code);
    if (!in_dump) ++changes;
  }
  if (!defs_closed) fail(path + ": missing $enddefinitions");
  if (codes.empty()) fail(path + ": no variables declared");
  if (changes == 0) fail(path + ": no value changes recorded");
}

void check_bench(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  for (const std::string& problem : perf::validate_bench_json(doc))
    fail(path + ": " + problem);
}

void check_dse_profile(const std::string& path) {
  JsonValue doc = parse_json(slurp(path));
  auto problems = analysis::validate_dse_profile(doc);
  for (const std::string& problem : problems) fail(path + ": " + problem);
  if (problems.empty()) {
    const JsonValue* pts = doc.find("points");
    std::printf("adc_obs_check: %s: %zu point profile(s) valid\n", path.c_str(),
                pts ? pts->array.size() : 0);
  }
}

void check_cache_dir(const std::string& dir) {
  auto entries = DiskCache::scan(dir);
  std::size_t valid = 0;
  for (const auto& e : entries) {
    if (e.valid) ++valid;
    else fail(dir + "/" + e.key + ".adcstage: " + e.defect);
  }
  std::printf("adc_obs_check: %s: %zu/%zu cache entries valid\n", dir.c_str(),
              valid, entries.size());
}

void check_access_log(const std::string& path) {
  std::uint64_t lines = 0;
  for (const std::string& problem : obs::AccessLog::validate(path, &lines))
    fail(path + ": " + problem);
  std::printf("adc_obs_check: %s: %llu access-log lines valid\n", path.c_str(),
              static_cast<unsigned long long>(lines));
}

// `body` came from a file or a live scrape; `catalogue_path` optionally
// pins the exposed family-name set.
void check_prometheus(const std::string& origin, const std::string& body,
                      const std::string& catalogue_path) {
  for (const std::string& problem : obs::validate_prometheus_text(body))
    fail(origin + ": " + problem);
  if (catalogue_path.empty()) return;
  // Family names are everything `# TYPE` declares.  The committed
  // catalogue is sorted, one name per line, '#' comments allowed.
  std::set<std::string> exposed;
  std::istringstream is(body);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("# TYPE ", 0) != 0) continue;
    std::string rest = line.substr(7);
    exposed.insert(rest.substr(0, rest.find(' ')));
  }
  std::set<std::string> expected;
  std::istringstream cat(slurp(catalogue_path));
  while (std::getline(cat, line)) {
    auto e = line.find_last_not_of(" \t\r");
    if (e == std::string::npos || line[0] == '#') continue;
    expected.insert(line.substr(0, e + 1));
  }
  for (const auto& name : expected)
    if (!exposed.count(name))
      fail(origin + ": family '" + name + "' missing (in " + catalogue_path + ")");
  for (const auto& name : exposed)
    if (!expected.count(name))
      fail(origin + ": family '" + name + "' not in " + catalogue_path +
           " — update the catalogue if this export is intentional");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, prov_path, vcd_path, bench_path, cache_dir;
  std::string dse_profile_path;
  std::string access_log_path, prom_path, prom_fetch, prom_out, catalogue_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "adc_obs_check: %s needs a file\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--provenance") prov_path = next();
    else if (arg == "--vcd") vcd_path = next();
    else if (arg == "--bench") bench_path = next();
    else if (arg == "--dse-profile") dse_profile_path = next();
    else if (arg == "--cache-dir") cache_dir = next();
    else if (arg == "--access-log") access_log_path = next();
    else if (arg == "--prom") prom_path = next();
    else if (arg == "--prom-fetch") prom_fetch = next();
    else if (arg == "--prom-out") prom_out = next();
    else if (arg == "--catalogue") catalogue_path = next();
    else {
      std::fprintf(stderr,
                   "usage: adc_obs_check [--trace FILE] [--provenance FILE] "
                   "[--vcd FILE] [--bench FILE] [--dse-profile FILE] "
                   "[--cache-dir DIR] "
                   "[--access-log FILE] [--prom FILE | --prom-fetch HOST:PORT "
                   "[--prom-out FILE]] [--catalogue FILE]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }
  try {
    if (!trace_path.empty()) check_trace(trace_path);
    if (!prov_path.empty()) check_provenance(prov_path);
    if (!vcd_path.empty()) check_vcd(vcd_path);
    if (!bench_path.empty()) check_bench(bench_path);
    if (!dse_profile_path.empty()) check_dse_profile(dse_profile_path);
    if (!cache_dir.empty()) check_cache_dir(cache_dir);
    if (!access_log_path.empty()) check_access_log(access_log_path);
    if (!prom_path.empty())
      check_prometheus(prom_path, slurp(prom_path), catalogue_path);
    if (!prom_fetch.empty()) {
      auto colon = prom_fetch.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--prom-fetch expects HOST:PORT");
      int status = 0;
      std::string body, err;
      if (!obs::http_get(prom_fetch.substr(0, colon),
                         static_cast<std::uint16_t>(
                             std::stoi(prom_fetch.substr(colon + 1))),
                         "/metrics", 5000, &status, &body, &err)) {
        fail(prom_fetch + ": " + err);
      } else if (status != 200) {
        fail(prom_fetch + ": /metrics answered HTTP " + std::to_string(status));
      } else {
        if (!prom_out.empty()) {
          std::ofstream out(prom_out);
          out << body;
          if (!out) throw std::runtime_error("cannot write " + prom_out);
        }
        check_prometheus(prom_fetch, body, catalogue_path);
        std::printf("adc_obs_check: %s: scraped %zu bytes of metrics\n",
                    prom_fetch.c_str(), body.size());
      }
    }
  } catch (const std::exception& e) {
    fail(e.what());
  }
  if (errors == 0) std::printf("adc_obs_check: all artifacts valid\n");
  return errors == 0 ? 0 : 1;
}
