// adc_submit — client for the adc_serve daemon.
//
// Submits synthesis jobs over the length-prefixed JSON protocol, waits
// for the results and reports them with the same table/JSON/exit-code
// conventions as adc_dse — so scripts can point either tool at the same
// grid and diff the output.
//
//   adc_submit --socket /tmp/adc.sock --bench diffeq --grid gt
//   adc_submit --connect 127.0.0.1:7788 --recipes "gt1; lt | gt2; lt"
//   adc_submit --socket /tmp/adc.sock --stats
//   adc_submit --socket /tmp/adc.sock --shutdown
//
// Options:
//   --socket PATH           connect to a Unix-domain socket
//   --connect HOST:PORT     connect over TCP
//   --bench NAME[,NAME...]  builtin benchmarks (default diffeq)
//   --recipes "S1 | S2"     explicit recipe list ('|'-separated)
//   --grid gt|gt-nolt       the 32-recipe GT ablation grid
//   --priority P            high|normal|low (default normal)
//   --deadline-ms N         per-job deadline (server may cap it)
//   --seed N                event-sim seed
//   --no-sim                skip event simulation
//   --client NAME           client name attached to the server's access log
//   --json FILE             machine-readable report ('-' = stdout)
//   --trace-out FILE        fetch every job's span tree from the daemon
//                           (the `trace` op) and write one merged
//                           Perfetto-loadable Chrome trace_event document
//   --stats                 print the server's stats document and exit
//   --metrics               print the server's live metrics document and exit
//   --ping                  connectivity check (exit 0 on a pong)
//   --cancel ID             cancel one job and exit
//   --shutdown              ask the server to drain and exit
//   --no-drain              with --shutdown: cancel instead of draining
//   --log-level LEVEL       error|warn|info|debug|trace
//   --help
//
// Exit codes mirror adc_dse (worst job outcome wins): 0 ok, 4 deadlock,
// 5 timeout/cancelled, 6 fault/error, 2 usage, 1 transport/internal.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "report/table.hpp"
#include "serve/client.hpp"
#include "trace/log.hpp"

using namespace adc;
using serve::ServeClient;

namespace {

int usage(int code) {
  std::fprintf(code ? stderr : stdout,
               "usage: adc_submit (--socket PATH | --connect HOST:PORT) "
               "[--bench NAMES] [--recipes \"S1 | S2\"] [--grid gt|gt-nolt] "
               "[--priority high|normal|low] [--deadline-ms N] [--seed N] "
               "[--no-sim] [--client NAME] [--json FILE] [--trace-out FILE] "
               "[--stats | --metrics | --ping | --cancel ID | --shutdown "
               "[--no-drain]] [--log-level LEVEL]\n"
               "\n"
               "exit codes (worst job outcome wins):\n"
               "  0  every job completed ok\n"
               "  1  transport or internal error\n"
               "  2  usage error\n"
               "  6  a job failed (fault or synthesis error)\n"
               "  5  a job timed out or was cancelled\n"
               "  4  a job's event simulation deadlocked\n");
  return code;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) {
    auto b = item.find_first_not_of(" \t\n");
    auto e = item.find_last_not_of(" \t\n");
    if (b == std::string::npos) continue;
    out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

std::string member_string(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  return m && m->is_string() ? m->string : std::string();
}

std::int64_t member_int(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  return m && m->is_number() ? static_cast<std::int64_t>(m->number) : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path, connect_spec, grid, json_path, trace_path, client_name;
  std::vector<std::string> bench_names, recipes;
  std::string priority = "normal";
  std::uint64_t deadline_ms = 0, seed = 1;
  bool simulate = true, do_stats = false, do_metrics = false, do_ping = false,
       do_shutdown = false;
  bool drain = true;
  std::int64_t cancel_id = -1;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage(2);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    else if (arg == "--socket") socket_path = next();
    else if (arg == "--connect") connect_spec = next();
    else if (arg == "--bench") for (auto& n : split(next(), ',')) bench_names.push_back(n);
    else if (arg == "--recipes") for (auto& r : split(next(), '|')) recipes.push_back(r);
    else if (arg == "--grid") grid = next();
    else if (arg == "--priority") priority = next();
    else if (arg == "--deadline-ms") deadline_ms = std::stoull(next());
    else if (arg == "--seed") seed = std::stoull(next());
    else if (arg == "--no-sim") simulate = false;
    else if (arg == "--client") client_name = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--trace-out") trace_path = next();
    else if (arg == "--stats") do_stats = true;
    else if (arg == "--metrics") do_metrics = true;
    else if (arg == "--ping") do_ping = true;
    else if (arg == "--cancel") cancel_id = std::stoll(next());
    else if (arg == "--shutdown") do_shutdown = true;
    else if (arg == "--no-drain") drain = false;
    else if (arg == "--log-level") {
      try {
        set_log_level(log_level_from_string(next()));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "adc_submit: %s\n", e.what());
        return 2;
      }
    }
    else return usage(2);
  }
  if (socket_path.empty() == connect_spec.empty()) {
    std::fprintf(stderr, "adc_submit: need exactly one of --socket / --connect\n");
    return usage(2);
  }

  try {
    ServeClient client = [&] {
      if (!socket_path.empty()) return ServeClient::connect_unix(socket_path);
      auto colon = connect_spec.rfind(':');
      if (colon == std::string::npos)
        throw std::runtime_error("--connect expects HOST:PORT");
      return ServeClient::connect_tcp(connect_spec.substr(0, colon),
                                      std::stoi(connect_spec.substr(colon + 1)));
    }();

    // Control-plane one-shots.
    if (do_ping) {
      JsonValue reply = client.request("{\"op\":\"ping\"}");
      bool ok = reply.find("ok") && reply.find("ok")->boolean;
      std::fprintf(stderr, "adc_submit: %s\n", ok ? "pong" : "ping failed");
      return ok ? 0 : 1;
    }
    if (do_stats) {
      JsonValue reply = client.request("{\"op\":\"stats\"}");
      std::printf("%s\n", to_json(reply, true).c_str());
      return reply.find("ok") && reply.find("ok")->boolean ? 0 : 1;
    }
    if (do_metrics) {
      JsonValue reply = client.request("{\"op\":\"metrics\"}");
      std::printf("%s\n", to_json(reply, true).c_str());
      return reply.find("ok") && reply.find("ok")->boolean ? 0 : 1;
    }
    if (cancel_id >= 0) {
      JsonWriter w;
      w.begin_object();
      w.kv("op", "cancel");
      w.kv("id", static_cast<std::uint64_t>(cancel_id));
      w.end_object();
      JsonValue reply = client.request(w.str());
      std::printf("%s\n", to_json(reply).c_str());
      return reply.find("ok") && reply.find("ok")->boolean ? 0 : 1;
    }
    if (do_shutdown) {
      JsonWriter w;
      w.begin_object();
      w.kv("op", "shutdown");
      w.kv("drain", drain);
      w.end_object();
      JsonValue reply = client.request(w.str());
      std::printf("%s\n", to_json(reply).c_str());
      return reply.find("ok") && reply.find("ok")->boolean ? 0 : 1;
    }

    // Job plane: assemble the recipe grid, submit everything, then wait.
    if (!grid.empty()) {
      if (grid != "gt" && grid != "gt-nolt")
        throw std::invalid_argument("unknown grid '" + grid + "'");
      bool with_lt = grid == "gt";
      // Mirrors runtime's gt_ablation_grid without linking the runtime:
      // every on/off combination of gt1..gt5 in the paper's step order.
      for (unsigned mask = 0; mask < 32; ++mask) {
        std::string s;
        const char* steps[] = {"gt1", "gt2", "gt3", "gt4", "gt5"};
        for (unsigned b = 0; b < 5; ++b) {
          if (!(mask & (1u << b))) continue;
          if (!s.empty()) s += "; ";
          s += steps[b];
        }
        if (with_lt) s += s.empty() ? "lt" : "; lt";
        recipes.push_back(s);
      }
    }
    if (recipes.empty())
      recipes = {"", "gt1; gt2; gt3; gt4; gt2; gt5", "gt1; gt2; gt3; gt4; gt2; gt5; lt"};
    if (bench_names.empty()) bench_names.push_back("diffeq");

    struct Submitted {
      std::uint64_t id;
      std::string bench, script;
    };
    std::vector<Submitted> jobs;
    for (const auto& bench : bench_names) {
      for (const auto& recipe : recipes) {
        JsonWriter w;
        w.begin_object();
        w.kv("op", "submit");
        w.kv("bench", bench);
        w.kv("script", recipe);
        w.kv("priority", priority);
        w.kv("simulate", simulate);
        w.kv("seed", seed);
        if (!client_name.empty()) w.kv("client", client_name);
        if (deadline_ms > 0) w.kv("deadline_ms", deadline_ms);
        w.end_object();
        jobs.push_back({client.submit(w.str()), bench, recipe});
      }
    }

    std::size_t n_ok = 0, n_deadlock = 0, n_timeout_cancel = 0, n_fail = 0;
    std::vector<JsonValue> points;
    points.reserve(jobs.size());
    for (const auto& job : jobs) {
      points.push_back(client.wait_result(job.id));
      const std::string status = member_string(points.back(), "status");
      if (status == "ok") ++n_ok;
      else if (status == "deadlock") ++n_deadlock;
      else if (status == "timeout" || status == "cancelled") ++n_timeout_cancel;
      else ++n_fail;
    }

    // Every job is terminal, so its span tree is complete: fetch each one
    // from the daemon and merge the event lists into a single document —
    // one Perfetto process per job (pid = job id).
    if (!trace_path.empty()) {
      JsonWriter w;
      w.begin_object();
      w.kv("displayTimeUnit", "ms");
      w.key("traceEvents");
      w.begin_array();
      std::size_t fetched = 0;
      for (const auto& job : jobs) {
        JsonWriter rq;
        rq.begin_object();
        rq.kv("op", "trace");
        rq.kv("id", job.id);
        rq.end_object();
        JsonValue reply = client.request(rq.str());
        const JsonValue* ok = reply.find("ok");
        const JsonValue* trace = reply.find("trace");
        const JsonValue* events = trace ? trace->find("traceEvents") : nullptr;
        if (!ok || !ok->boolean || !events || !events->is_array()) {
          std::fprintf(stderr, "adc_submit: no trace for job %llu\n",
                       static_cast<unsigned long long>(job.id));
          continue;
        }
        for (const JsonValue& ev : events->array) write_json_value(w, ev);
        ++fetched;
      }
      w.end_array();
      w.end_object();
      std::ofstream out(trace_path);
      out << w.str() << "\n";
      if (!out) throw std::runtime_error("cannot write " + trace_path);
      std::fprintf(stderr, "adc_submit: wrote %s (%zu job traces)\n",
                   trace_path.c_str(), fetched);
    }

    if (json_path.empty()) {
      Table t({"id", "benchmark", "script", "channels", "latency", "status",
               "disk"});
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JsonValue& p = points[i];
        const JsonValue* disk = p.find("from_disk_cache");
        t.add_row({std::to_string(jobs[i].id), jobs[i].bench,
                   jobs[i].script.empty() ? "(none)" : jobs[i].script,
                   std::to_string(member_int(p, "channels")),
                   std::to_string(member_int(p, "latency")),
                   member_string(p, "status"),
                   disk && disk->is_bool() && disk->boolean ? "warm" : "-"});
      }
      std::printf("%s", t.to_string().c_str());
      std::printf("\n%zu jobs: %zu ok, %zu deadlock, %zu timeout/cancelled, "
                  "%zu failed\n",
                  jobs.size(), n_ok, n_deadlock, n_timeout_cancel, n_fail);
    } else {
      JsonWriter w(true);
      w.begin_object();
      w.kv("tool", "adc_submit");
      w.kv("jobs", static_cast<std::uint64_t>(jobs.size()));
      w.key("points");
      w.begin_array();
      for (const JsonValue& p : points) write_json_value(w, p);
      w.end_array();
      w.end_object();
      if (json_path == "-") {
        std::printf("%s\n", w.str().c_str());
      } else {
        std::ofstream out(json_path);
        out << w.str() << "\n";
        if (!out) throw std::runtime_error("cannot write " + json_path);
        std::fprintf(stderr, "adc_submit: wrote %s (%zu points)\n",
                     json_path.c_str(), jobs.size());
      }
    }

    if (n_fail) return 6;
    if (n_timeout_cancel) return 5;
    if (n_deadlock) return 4;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "adc_submit: %s\n", e.what());
    return 1;
  }
}
