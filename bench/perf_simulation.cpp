// Performance evaluation (the paper's §3.1 motivation made quantitative):
// DIFFEQ execution latency at each optimization level, measured by both
// simulators, with an iteration-count sweep.  GT1's loop parallelism and
// the LT critical-path optimizations should show as monotone speedups.

#include "common.hpp"

using namespace adc;
using namespace adc::bench;

int main() {
  std::printf("DIFFEQ execution latency (worst-case delays, deterministic)\n\n");

  struct Variant {
    const char* label;
    bool gt, lt;
  };
  const Variant variants[] = {{"unoptimized", false, false},
                              {"optimized-GT", true, false},
                              {"optimized-GT-and-LT", true, true}};

  // --- token-level (CDFG firing) latency -------------------------------
  std::printf("CDFG token simulation (architecture-level latency):\n");
  Table t({"iterations", "unoptimized", "optimized-GT", "speedup",
           "per-iter unopt", "per-iter GT"});
  for (std::int64_t a : {4, 8, 16, 32, 64}) {
    std::map<std::string, std::int64_t> times;
    for (const auto& v : variants) {
      if (v.lt) continue;  // LT does not change the CDFG-level graph
      Cdfg g = diffeq();
      if (v.gt) run_global_transforms(g);
      TokenSimOptions o;
      o.randomize_delays = false;
      auto r = run_token_sim(g, diffeq_inputs(a), o);
      if (!r.completed) {
        std::printf("  %s failed: %s\n", v.label, r.error.c_str());
        return 1;
      }
      times[v.label] = r.finish_time;
    }
    double speedup = static_cast<double>(times["unoptimized"]) /
                     static_cast<double>(times["optimized-GT"]);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", speedup);
    t.add_row({std::to_string(a), std::to_string(times["unoptimized"]),
               std::to_string(times["optimized-GT"]), buf,
               std::to_string(times["unoptimized"] / a),
               std::to_string(times["optimized-GT"] / a)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // --- gate-level (controller) latency ----------------------------------
  std::printf("gate-level event simulation (synthesized controllers):\n");
  Table e({"iterations", "unoptimized", "optimized-GT", "optimized-GT-and-LT",
           "GT+LT speedup"});
  for (std::int64_t a : {4, 8, 16, 32}) {
    std::map<std::string, std::int64_t> times;
    for (const auto& v : variants) {
      FlowResult f = run_flow(diffeq(), v.gt, v.lt);
      EventSimOptions o;
      o.randomize_delays = false;
      auto r = run_event_sim(f.g, f.plan, f.instances, diffeq_inputs(a), o);
      if (!r.completed) {
        std::printf("  %s failed: %s\n", v.label, r.error.c_str());
        return 1;
      }
      times[v.label] = r.finish_time;
    }
    double speedup = static_cast<double>(times["unoptimized"]) /
                     static_cast<double>(times["optimized-GT-and-LT"]);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", speedup);
    e.add_row({std::to_string(a), std::to_string(times["unoptimized"]),
               std::to_string(times["optimized-GT"]),
               std::to_string(times["optimized-GT-and-LT"]), buf});
  }
  std::printf("%s\n", e.to_string().c_str());

  // Iteration overlap demonstration (GT1's effect).
  std::printf("iteration overlap (token simulation, randomized delays):\n");
  for (bool gt : {false, true}) {
    Cdfg g = diffeq();
    if (gt) run_global_transforms(g);
    int overlap = 1;
    for (unsigned seed = 1; seed <= 10; ++seed) {
      TokenSimOptions o;
      o.seed = seed;
      auto r = run_token_sim(g, diffeq_inputs(32), o);
      overlap = std::max(overlap, r.max_overlap);
    }
    std::printf("  %-14s max concurrent iterations: %d\n",
                gt ? "optimized-GT" : "unoptimized", overlap);
  }
  return 0;
}
