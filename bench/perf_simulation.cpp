// Performance evaluation (the paper's §3.1 motivation made quantitative):
// DIFFEQ execution latency at each optimization level, measured by both
// simulators, with an iteration-count sweep.  GT1's loop parallelism and
// the LT critical-path optimizations should show as monotone speedups.
//
//   ./build/bench/perf_simulation [--json FILE]
//
// --json emits the BENCH JSON schema (perf/record.hpp): one record per
// (simulator, optimization level, iteration count) with the measured wall
// time of the simulation and the simulated latency as a counter — the same
// record structure adc_bench writes, so saved runs diff with
// `adc_bench --diff`.

#include <cstring>
#include <fstream>

#include "common.hpp"
#include "perf/measure.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

std::vector<perf::BenchRecord> records;

// One-shot measurement wrapper: wall/CPU around `fn`, simulated results as
// counters.
template <typename Fn>
auto timed(const std::string& suite, const std::string& name, Fn&& fn) {
  std::uint64_t w0 = perf::wall_now_micros();
  std::uint64_t c0 = perf::process_cpu_micros();
  auto result = fn();
  double wall = static_cast<double>(perf::wall_now_micros() - w0);
  double cpu = static_cast<double>(perf::process_cpu_micros() - c0);
  perf::BenchRecord rec;
  rec.suite = suite;
  rec.name = name;
  rec.repeats = 1;
  rec.wall_us = perf::stat_from_samples({wall}, false);
  rec.cpu_us = perf::stat_from_samples({cpu}, false);
  rec.peak_rss_kb = perf::peak_rss_kb();
  rec.counters["finish_time"] = static_cast<double>(result.finish_time);
  records.push_back(std::move(rec));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json") && i + 1 < argc) json_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: perf_simulation [--json FILE]\n");
      return !std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h") ? 0 : 2;
    }
  }

  std::printf("DIFFEQ execution latency (worst-case delays, deterministic)\n\n");

  struct Variant {
    const char* label;
    bool gt, lt;
  };
  const Variant variants[] = {{"unoptimized", false, false},
                              {"optimized-GT", true, false},
                              {"optimized-GT-and-LT", true, true}};

  // --- token-level (CDFG firing) latency -------------------------------
  std::printf("CDFG token simulation (architecture-level latency):\n");
  Table t({"iterations", "unoptimized", "optimized-GT", "speedup",
           "per-iter unopt", "per-iter GT"});
  for (std::int64_t a : {4, 8, 16, 32, 64}) {
    std::map<std::string, std::int64_t> times;
    for (const auto& v : variants) {
      if (v.lt) continue;  // LT does not change the CDFG-level graph
      Cdfg g = diffeq();
      if (v.gt) run_global_transforms(g);
      TokenSimOptions o;
      o.randomize_delays = false;
      auto r = timed("token",
                     std::string("token.diffeq_") + (v.gt ? "gt" : "unopt") +
                         "_a" + std::to_string(a),
                     [&] { return run_token_sim(g, diffeq_inputs(a), o); });
      if (!r.completed) {
        std::printf("  %s failed: %s\n", v.label, r.error.c_str());
        return 1;
      }
      times[v.label] = r.finish_time;
    }
    double speedup = static_cast<double>(times["unoptimized"]) /
                     static_cast<double>(times["optimized-GT"]);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", speedup);
    t.add_row({std::to_string(a), std::to_string(times["unoptimized"]),
               std::to_string(times["optimized-GT"]), buf,
               std::to_string(times["unoptimized"] / a),
               std::to_string(times["optimized-GT"] / a)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // --- gate-level (controller) latency ----------------------------------
  std::printf("gate-level event simulation (synthesized controllers):\n");
  Table e({"iterations", "unoptimized", "optimized-GT", "optimized-GT-and-LT",
           "GT+LT speedup"});
  for (std::int64_t a : {4, 8, 16, 32}) {
    std::map<std::string, std::int64_t> times;
    for (const auto& v : variants) {
      FlowResult f = run_flow(diffeq(), v.gt, v.lt);
      EventSimOptions o;
      o.randomize_delays = false;
      std::string tag = !v.gt ? "unopt" : v.lt ? "gtlt" : "gt";
      auto r = timed("event", "event.diffeq_" + tag + "_a" + std::to_string(a),
                     [&] {
                       return run_event_sim(f.g, f.plan, f.instances,
                                            diffeq_inputs(a), o);
                     });
      if (!r.completed) {
        std::printf("  %s failed: %s\n", v.label, r.error.c_str());
        return 1;
      }
      times[v.label] = r.finish_time;
    }
    double speedup = static_cast<double>(times["unoptimized"]) /
                     static_cast<double>(times["optimized-GT-and-LT"]);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", speedup);
    e.add_row({std::to_string(a), std::to_string(times["unoptimized"]),
               std::to_string(times["optimized-GT"]),
               std::to_string(times["optimized-GT-and-LT"]), buf});
  }
  std::printf("%s\n", e.to_string().c_str());

  // Iteration overlap demonstration (GT1's effect).
  std::printf("iteration overlap (token simulation, randomized delays):\n");
  for (bool gt : {false, true}) {
    Cdfg g = diffeq();
    if (gt) run_global_transforms(g);
    int overlap = 1;
    for (unsigned seed = 1; seed <= 10; ++seed) {
      TokenSimOptions o;
      o.seed = seed;
      auto r = run_token_sim(g, diffeq_inputs(32), o);
      overlap = std::max(overlap, r.max_overlap);
    }
    std::printf("  %-14s max concurrent iterations: %d\n",
                gt ? "optimized-GT" : "unoptimized", overlap);
  }

  if (!json_path.empty()) {
    perf::BenchReport rep;
    rep.tool = "perf_simulation";
    rep.env = perf::capture_env();
    rep.policy.warmup = 0;
    rep.policy.repeats = 1;
    rep.policy.trim_outliers = false;
    rep.benchmarks = std::move(records);
    std::ofstream out(json_path);
    out << perf::to_json(rep) << "\n";
    if (!out) {
      std::fprintf(stderr, "perf_simulation: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "perf_simulation: wrote %s\n", json_path.c_str());
  }
  return 0;
}
