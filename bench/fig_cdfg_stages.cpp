// Reproduction of the paper's CDFG snapshots — Figure 1 (initial), Figure 3
// (after GT1 and GT2), Figure 4 (after GT3 and GT4), Figure 6 (after
// channel elimination): arc statistics per stage, presence/absence of the
// specific arcs the paper names, and Graphviz dumps of every stage.

#include <fstream>

#include "cdfg/analysis.hpp"
#include "cdfg/dot.hpp"
#include "common.hpp"
#include "transforms/global.hpp"
#include "transforms/gt5.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

void stage_stats(const Cdfg& g, const char* name, const char* dot_file) {
  int ctrl = 0, sched = 0, data = 0, reg = 0, backward = 0, inter = 0;
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (has_role(a.roles, ArcRole::kControl)) ++ctrl;
    if (has_role(a.roles, ArcRole::kScheduling)) ++sched;
    if (has_role(a.roles, ArcRole::kDataDep)) ++data;
    if (has_role(a.roles, ArcRole::kRegAlloc)) ++reg;
    if (a.backward) ++backward;
    if (g.node(a.src).fu != g.node(a.dst).fu) ++inter;
  }
  std::printf("%-28s nodes %2zu, arcs %2zu (ctrl %d, sched %d, data %d, reg %d, "
              "backward %d), inter-controller %d\n",
              name, g.live_node_count(), g.live_arc_count(), ctrl, sched, data, reg,
              backward, inter);
  std::ofstream(dot_file) << to_dot(g);
}

bool arc(const Cdfg& g, const char* s, const char* d, bool backward = false) {
  auto sn = g.find_node_by_label(s);
  auto dn = g.find_node_by_label(d);
  return sn && dn && g.find_arc(*sn, *dn, backward).has_value();
}

void named_arc(const Cdfg& g, const char* what, const char* s, const char* d,
               bool backward, bool expected) {
  bool present = arc(g, s, d, backward);
  std::printf("  %-44s %-7s (paper: %s)\n", what, present ? "present" : "absent",
              expected ? "present" : "absent");
}

}  // namespace

int main() {
  std::printf("CDFG stages along the flow (Figures 1, 3, 4, 6)\n\n");

  Cdfg g = diffeq();
  stage_stats(g, "Figure 1: initial CDFG", "fig1_initial.dot");
  std::printf("paper-named arcs in the initial graph:\n");
  named_arc(g, "arc 1: U:=U-M1 -> ENDLOOP", "U := U - M1", "ENDLOOP", false, true);
  named_arc(g, "arc 5: M1:=U*X1 -> U:=U-M1 (dominated)", "M1 := U * X1", "U := U - M1",
            false, true);
  named_arc(g, "arc 6: M1:=U*X1 -> A:=Y+M1", "M1 := U * X1", "A := Y + M1", false, true);
  named_arc(g, "arc 7: A:=Y+M1 -> U:=U-M1", "A := Y + M1", "U := U - M1", false, true);
  std::printf("\n");

  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  stage_stats(g, "Figure 3: after GT1 and GT2", "fig3_gt1_gt2.dot");
  std::printf("paper-named arcs after GT1+GT2:\n");
  named_arc(g, "arc 1 removed (step A)", "U := U - M1", "ENDLOOP", false, false);
  named_arc(g, "arc 8: backward U:=U-M1 -> M1:=U*X1", "U := U - M1", "M1 := U * X1",
            true, true);
  named_arc(g, "arc 9: backward U:=U-M1 -> M2:=U*dx", "U := U - M1", "M2 := U * dx",
            true, true);
  named_arc(g, "arc 5 removed (GT2)", "M1 := U * X1", "U := U - M1", false, false);
  named_arc(g, "arc 10: M2:=U*dx -> U:=U-M1", "M2 := U * dx", "U := U - M1", false, true);
  named_arc(g, "arc 11: M1:=A*B -> U:=U-M1", "M1 := A * B", "U := U - M1", false, true);
  std::printf("\n");

  gt3_relative_timing(g, DelayModel::typical());
  gt4_merge_assignments(g);
  gt2_remove_dominated(g);
  stage_stats(g, "Figure 4: after GT3 and GT4", "fig4_gt3_gt4.dot");
  std::printf("paper-named changes after GT3+GT4:\n");
  named_arc(g, "arc 10 removed (relative timing)", "M2 := U * dx", "U := U - M1", false,
            false);
  named_arc(g, "arc 11 kept (the slower arc)", "M1 := A * B", "U := U - M1", false, true);
  std::printf("  merged node '%s': %s (paper: present)\n", "Y := Y + M2; X1 := X",
              g.find_node_by_label("Y := Y + M2; X1 := X") ? "present" : "absent");
  std::printf("\n");

  auto res = gt5_channel_elimination(g);
  stage_stats(g, "Figure 6: after channel elim.", "fig6_channels.dot");
  std::printf("  controller channels: %zu (paper: 5), multi-way: %zu (paper: 2)\n",
              res.plan.count_controller_channels(), res.plan.count_multiway());
  std::printf("\nDOT files written: fig1_initial.dot fig3_gt1_gt2.dot fig4_gt3_gt4.dot "
              "fig6_channels.dot\n");
  return 0;
}
