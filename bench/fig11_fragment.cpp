// The paper's Figure 11, "BM Expansion of RTL-Node A := Y + M1": the
// burst-mode fragment a single CDFG node expands into, before and after
// the local transformations.  The unoptimized fragment shows the six
// micro-operation phases of §4.2 — (i) wait request / set input muxes,
// (ii) do operation, (iii) set register mux, (iv) write register,
// (v) reset local signals in parallel, (vi) send done signals — and the
// optimized one shows what LT1-LT5 collapse them into.

#include "common.hpp"
#include "xbm/print.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

void show_fragment(const Cdfg& g, const Xbm& m, const char* title) {
  std::printf("%s\n", title);
  NodeId node = *g.find_node_by_label("A := Y + M1");
  for (TransitionId tid : m.transition_ids()) {
    const auto& t = m.transition(tid);
    if (t.origin != node) continue;
    std::printf("  %-6s -> %-6s  %s", m.state(t.from).name.c_str(),
                m.state(t.to).name.c_str(), burst_to_string(m, t).c_str());
    if (!t.note.empty()) std::printf("   ; %s", t.note.c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 11 — burst-mode expansion of the RTL node A := Y + M1\n\n");

  FlowResult unopt = run_flow(diffeq(), true, false);
  show_fragment(unopt.g, controller(unopt, "ALU1").machine,
                "direct translation (micro-operations (i)-(vi)):");

  FlowResult opt = run_flow(diffeq(), true, true);
  show_fragment(opt.g, controller(opt, "ALU1").machine,
                "after LT1-LT5 (acks removed, dones moved up, muxes preselected):");

  std::printf("key: +/- concrete 4-phase edges, ~ transition-signalled wire,\n"
              "     * directed don't-care (early arrival tolerated),\n"
              "     <c+>/<c-> sampled conditionals.\n");
  return 0;
}
