// Design-space exploration — the paper's core claim is that the transforms
// form a *toolbox* for systematically exploring implementations.  This
// bench toggles each transformation and reports the whole quality surface:
// channels, controller complexity, gate-level area and simulated latency,
// across all bundled benchmarks.
//
// All rows are evaluated as one batch on the parallel synthesis runtime:
// the requests fan across a work-stealing pool and recipes sharing script
// prefixes reuse cached stages instead of recomputing them.

#include "area/area_model.hpp"
#include "common.hpp"
#include "runtime/flow.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

void row(Table& t, const std::string& label, const FlowPoint& p) {
  t.add_row({label, std::to_string(p.channels), pair_cell(p.states, p.transitions),
             pair_cell(p.products, p.literals), std::to_string(p.latency),
             p.ok ? "yes" : "NO"});
}

FlowRequest request_for(const char* bench_name, const std::string& script) {
  const BuiltinBenchmark* b = find_builtin(bench_name);
  if (!b) throw std::runtime_error(std::string("no builtin ") + bench_name);
  return make_builtin_request(*b, script);
}

}  // namespace

int main() {
  ThreadPool pool;
  FlowExecutor exec(&pool);

  std::printf("design-space exploration: per-transform ablation on DIFFEQ\n");
  std::printf("cells: totals across the four controllers (%zu workers)\n\n", pool.size());

  // Part 1: the DIFFEQ ablation rows, as (label, recipe script) pairs.
  std::vector<std::pair<std::string, std::string>> ablation;
  GlobalPipelineOptions all;
  ablation.emplace_back("no transforms", script_for(all, false, false));
  ablation.emplace_back("all GT, no LT", script_for(all, true, false));
  ablation.emplace_back("all GT + LT", script_for(all, true, true));

  struct Knock {
    const char* label;
    void (*tweak)(GlobalPipelineOptions&);
  };
  const Knock knocks[] = {
      {"without GT1 (loop par.)", [](GlobalPipelineOptions& o) { o.gt1 = false; }},
      {"without GT2 (dominated)", [](GlobalPipelineOptions& o) { o.gt2 = false; }},
      {"without GT3 (rel. timing)", [](GlobalPipelineOptions& o) { o.gt3 = false; }},
      {"without GT4 (merge assign)", [](GlobalPipelineOptions& o) { o.gt4 = false; }},
      {"without GT5 (channels)", [](GlobalPipelineOptions& o) { o.gt5 = false; }},
  };
  for (const auto& k : knocks) {
    GlobalPipelineOptions o;
    k.tweak(o);
    ablation.emplace_back(k.label, script_for(o, true, true));
  }

  // GT5 policy exploration: the broadcast-formation policy trades wires
  // against receiver bookkeeping.
  {
    GlobalPipelineOptions o;
    o.gt5_options.same_source = Gt5Options::SameSource::kAll;
    ablation.emplace_back("GT5 aggressive broadcast", script_for(o, true, true));
    GlobalPipelineOptions o2;
    o2.gt5_options.same_source = Gt5Options::SameSource::kNone;
    ablation.emplace_back("GT5 no broadcast", script_for(o2, true, true));
    GlobalPipelineOptions o3;
    o3.gt5_options.concurrency_reduction = true;
    o3.gt5_options.max_period_increase = 200;
    ablation.emplace_back("GT5 + concurrency reduction", script_for(o3, true, true));
  }

  std::vector<FlowRequest> reqs;
  for (const auto& [label, script] : ablation) reqs.push_back(request_for("diffeq", script));
  std::vector<FlowPoint> points = exec.run_all(reqs);

  Table t({"configuration", "channels", "states/trans", "prod/lits", "latency", "correct"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    row(t, ablation[i].first, points[i]);
    if (i == 2 || i == 7) t.add_separator();
  }
  std::printf("%s\n", t.to_string().c_str());

  // Part 2: the same surface for the other bundled benchmarks.
  std::printf("all benchmarks, unoptimized vs fully optimized:\n");
  const char* cases[] = {"diffeq", "gcd", "fir4", "mac_reduce", "ewf_lite", "ewf"};
  std::string none = script_for({}, false, false);
  std::string full = script_for({}, true, true);
  std::vector<FlowRequest> breqs;
  for (const char* c : cases) {
    breqs.push_back(request_for(c, none));
    breqs.push_back(request_for(c, full));
  }
  std::vector<FlowPoint> bpoints = exec.run_all(breqs);

  Table b({"benchmark", "config", "channels", "states/trans", "prod/lits", "latency",
           "correct"});
  for (std::size_t i = 0; i < bpoints.size(); i += 2) {
    const FlowPoint& un = bpoints[i];
    const FlowPoint& op = bpoints[i + 1];
    b.add_row({cases[i / 2], "unoptimized", std::to_string(un.channels),
               pair_cell(un.states, un.transitions), pair_cell(un.products, un.literals),
               std::to_string(un.latency), un.ok ? "yes" : "NO"});
    b.add_row({"", "GT+LT", std::to_string(op.channels),
               pair_cell(op.states, op.transitions), pair_cell(op.products, op.literals),
               std::to_string(op.latency), op.ok ? "yes" : "NO"});
  }
  std::printf("%s", b.to_string().c_str());

  CacheStats cs = exec.cache().stats();
  std::printf("\nruntime: %llu stage computations, %llu served from cache\n",
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.hits + cs.joins));
  return 0;
}
