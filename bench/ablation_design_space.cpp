// Design-space exploration — the paper's core claim is that the transforms
// form a *toolbox* for systematically exploring implementations.  This
// bench toggles each transformation and reports the whole quality surface:
// channels, controller complexity, gate-level area and simulated latency,
// across all bundled benchmarks.

#include "area/area_model.hpp"
#include "common.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

struct Metrics {
  std::size_t channels = 0;
  std::size_t states = 0;
  std::size_t transitions = 0;
  std::size_t products = 0;
  std::size_t literals = 0;
  std::int64_t latency = 0;
  bool ok = true;
};

Metrics measure(Cdfg graph, const GlobalPipelineOptions& gopts, bool gt, bool lt,
                const std::map<std::string, std::int64_t>& init) {
  Metrics m;
  FlowResult f = run_flow(std::move(graph), gt, lt, gopts);
  m.channels = f.plan.count_controller_channels();
  for (const auto& inst : f.instances) {
    m.states += inst.controller.machine.state_count();
    m.transitions += inst.controller.machine.transition_count();
    auto r = synthesize_logic(inst.controller);
    m.products += r.product_count(true);
    m.literals += r.literal_count(true);
    if (!r.feasible()) m.ok = false;
  }
  EventSimOptions o;
  o.randomize_delays = false;
  auto r = run_event_sim(f.g, f.plan, f.instances, init, o);
  m.ok = m.ok && r.completed;
  m.latency = r.finish_time;
  return m;
}

void row(Table& t, const char* label, const Metrics& m) {
  t.add_row({label, std::to_string(m.channels), pair_cell(m.states, m.transitions),
             pair_cell(m.products, m.literals), std::to_string(m.latency),
             m.ok ? "yes" : "NO"});
}

}  // namespace

int main() {
  std::printf("design-space exploration: per-transform ablation on DIFFEQ\n");
  std::printf("cells: totals across the four controllers\n\n");

  auto init = diffeq_inputs(8);
  Table t({"configuration", "channels", "states/trans", "prod/lits", "latency", "correct"});

  row(t, "no transforms", measure(diffeq(), {}, false, false, init));
  GlobalPipelineOptions all;
  row(t, "all GT, no LT", measure(diffeq(), all, true, false, init));
  row(t, "all GT + LT", measure(diffeq(), all, true, true, init));
  t.add_separator();

  struct Knock {
    const char* label;
    void (*tweak)(GlobalPipelineOptions&);
  };
  const Knock knocks[] = {
      {"without GT1 (loop par.)", [](GlobalPipelineOptions& o) { o.gt1 = false; }},
      {"without GT2 (dominated)", [](GlobalPipelineOptions& o) { o.gt2 = false; }},
      {"without GT3 (rel. timing)", [](GlobalPipelineOptions& o) { o.gt3 = false; }},
      {"without GT4 (merge assign)", [](GlobalPipelineOptions& o) { o.gt4 = false; }},
      {"without GT5 (channels)", [](GlobalPipelineOptions& o) { o.gt5 = false; }},
  };
  for (const auto& k : knocks) {
    GlobalPipelineOptions o;
    k.tweak(o);
    row(t, k.label, measure(diffeq(), o, true, true, init));
  }
  t.add_separator();

  // GT5 policy exploration: the broadcast-formation policy trades wires
  // against receiver bookkeeping.
  {
    GlobalPipelineOptions o;
    o.gt5_options.same_source = Gt5Options::SameSource::kAll;
    row(t, "GT5 aggressive broadcast", measure(diffeq(), o, true, true, init));
    GlobalPipelineOptions o2;
    o2.gt5_options.same_source = Gt5Options::SameSource::kNone;
    row(t, "GT5 no broadcast", measure(diffeq(), o2, true, true, init));
    GlobalPipelineOptions o3;
    o3.gt5_options.concurrency_reduction = true;
    o3.gt5_options.max_period_increase = 200;
    row(t, "GT5 + concurrency reduction", measure(diffeq(), o3, true, true, init));
  }
  std::printf("%s\n", t.to_string().c_str());

  // The same surface for the other bundled benchmarks (fully automatic).
  std::printf("all benchmarks, unoptimized vs fully optimized:\n");
  Table b({"benchmark", "config", "channels", "states/trans", "prod/lits", "latency",
           "correct"});
  struct Case {
    const char* name;
    Cdfg (*make)();
    std::map<std::string, std::int64_t> init;
  };
  const Case cases[] = {
      {"diffeq", diffeq, diffeq_inputs(8)},
      {"gcd", gcd, {{"A", 21}, {"B", 14}, {"C", 1}}},
      {"fir4",
       fir4,
       {{"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
        {"K3", 8}}},
      {"mac_reduce",
       mac_reduce,
       {{"X", 0}, {"K", 3}, {"T", 40}, {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}}},
      {"ewf_lite",
       ewf_lite,
       {{"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}, {"K1", 2}, {"K2", 3}, {"K3", 4}}},
      {"ewf (34 ops, HLS)",
       []() { return ewf(); },
       {{"IN", 5}, {"k1", 2}, {"k2", 3}, {"k3", 1}, {"k4", 2}, {"k5", 3},
        {"sv1", 1}, {"sv2", 2}, {"sv3", 3}, {"sv4", 4}, {"sv5", 5}, {"sv6", 6},
        {"sv7", 7}, {"sv8", 8}}},
  };
  for (const auto& c : cases) {
    Metrics un = measure(c.make(), {}, false, false, c.init);
    Metrics op = measure(c.make(), {}, true, true, c.init);
    b.add_row({c.name, "unoptimized", std::to_string(un.channels),
               pair_cell(un.states, un.transitions), pair_cell(un.products, un.literals),
               std::to_string(un.latency), un.ok ? "yes" : "NO"});
    b.add_row({"", "GT+LT", std::to_string(op.channels),
               pair_cell(op.states, op.transitions), pair_cell(op.products, op.literals),
               std::to_string(op.latency), op.ok ? "yes" : "NO"});
  }
  std::printf("%s", b.to_string().c_str());
  return 0;
}
