#pragma once
// Shared helpers for the reproduction benches: flow drivers and the
// published reference numbers used as comparison rows.

#include <cstdio>
#include <stdexcept>
#include <map>
#include <string>
#include <vector>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "logic/stats.hpp"
#include "ltrans/local.hpp"
#include "report/table.hpp"
#include "sim/event_sim.hpp"
#include "sim/golden.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc::bench {

// Reference constants published in the paper (Theobald & Nowick, DAC 2001).
// Figure 12 — state machine comparison (states/transitions per controller,
// and communication channel counts); Figure 13 — gate-level comparison
// (two-level products/literals).  Yun et al.'s numbers are the manual
// design of [26]; "paper" rows are the authors' prototype results.
struct Fig12Row {
  const char* label;
  int channels;
  int alu1_s, alu1_t, alu2_s, alu2_t, mul1_s, mul1_t, mul2_s, mul2_t;
};
inline const std::vector<Fig12Row>& paper_fig12() {
  static const std::vector<Fig12Row> rows = {
      {"paper unoptimized", 17, 26, 29, 45, 52, 21, 24, 12, 14},
      {"paper optimized-GT", 5, 16, 18, 26, 32, 12, 14, 8, 10},
      {"paper optimized-GT-and-LT", 5, 7, 9, 11, 13, 6, 6, 4, 5},
      {"YUN (manual)", 5, 7, 9, 14, 16, 4, 4, 3, 3},
  };
  return rows;
}

struct Fig13Row {
  const char* label;
  int alu1_p, alu1_l, alu2_p, alu2_l, mul1_p, mul1_l, mul2_p, mul2_l;
  int total_p, total_l;
};
inline const std::vector<Fig13Row>& paper_fig13() {
  static const std::vector<Fig13Row> rows = {
      {"Yun (manual)", 18, 110, 46, 141, 19, 41, 10, 15, 93, 307},
      {"paper (their method)", 14, 83, 40, 113, 11, 30, 8, 18, 73, 244},
  };
  return rows;
}

// A fully synthesized system at one optimization level.
struct FlowResult {
  Cdfg g{"empty"};
  ChannelPlan plan;
  std::vector<ControllerInstance> instances;
  std::vector<TransformResult> stages;
};

inline FlowResult run_flow(Cdfg graph, bool gt, bool lt,
                           const GlobalPipelineOptions& gt_opts = {}) {
  FlowResult out;
  out.g = std::move(graph);
  if (gt) {
    auto res = run_global_transforms(out.g, gt_opts);
    out.plan = std::move(res.plan);
    out.stages = std::move(res.stages);
  } else {
    out.plan = ChannelPlan::derive(out.g);
  }
  for (auto& c : extract_controllers(out.g, out.plan)) {
    ControllerInstance inst;
    if (lt) inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    out.instances.push_back(std::move(inst));
  }
  return out;
}

inline const ExtractedController& controller(const FlowResult& f, const char* name) {
  for (const auto& inst : f.instances)
    if (f.g.fu(inst.controller.fu).name == name) return inst.controller;
  throw std::runtime_error(std::string("no controller ") + name);
}

inline std::map<std::string, std::int64_t> diffeq_inputs(std::int64_t a = 8) {
  return {{"X", 0}, {"a", a}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}};
}

}  // namespace adc::bench
