// Reproduction of the paper's Figure 13: "Gate-Level Comparison".
//
// Two-level hazard-free implementations of the optimized-GT-and-LT DIFFEQ
// controllers: products and literals per controller, in both counting modes
// (shared AND-terms, Minimalist-like; and single-output, 3D-like), next to
// the published rows.
//
// Absolute counts are not comparable one-to-one: the paper used
// Minimalist/3D with their state-minimization and critical-race-free
// assignment engines, while this reproduction uses a Gray-walk/greedy
// encoding and lazy phase concretization (which doubles ring states whose
// wire phases alternate — see DESIGN.md).  The comparable signal is the
// trend across optimization levels, printed below the headline table.

#include "common.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

struct Cells {
  std::map<std::string, GateStats> per;
  std::size_t tp = 0, tl = 0;  // shared-mode totals
};

Cells synthesize_all(const FlowResult& f) {
  Cells out;
  for (const auto& inst : f.instances) {
    auto r = synthesize_logic(inst.controller);
    auto st = gate_stats(r, inst.controller.machine.state_count());
    out.per[f.g.fu(inst.controller.fu).name] = st;
    out.tp += st.products_shared;
    out.tl += st.literals_shared;
    for (const auto& issue : r.issues) std::printf("  ISSUE: %s\n", issue.c_str());
  }
  return out;
}

}  // namespace

int main() {
  std::printf("Figure 13 — gate-level comparison (DIFFEQ)\n");
  std::printf("cells: #products/#literals (shared AND-plane counting)\n\n");

  FlowResult f = run_flow(diffeq(), true, true);
  Cells ours = synthesize_all(f);

  Table t({"method", "ALU1", "ALU2", "MUL1", "MUL2", "total"});
  auto cell = [&ours](const char* n) {
    const auto& s = ours.per.at(n);
    return pair_cell(s.products_shared, s.literals_shared);
  };
  t.add_row({"our method (GT+LT)", cell("ALU1"), cell("ALU2"), cell("MUL1"),
             cell("MUL2"), pair_cell(ours.tp, ours.tl)});
  t.add_separator();
  for (const auto& r : paper_fig13()) {
    t.add_row({r.label,
               pair_cell(static_cast<std::size_t>(r.alu1_p), static_cast<std::size_t>(r.alu1_l)),
               pair_cell(static_cast<std::size_t>(r.alu2_p), static_cast<std::size_t>(r.alu2_l)),
               pair_cell(static_cast<std::size_t>(r.mul1_p), static_cast<std::size_t>(r.mul1_l)),
               pair_cell(static_cast<std::size_t>(r.mul2_p), static_cast<std::size_t>(r.mul2_l)),
               pair_cell(static_cast<std::size_t>(r.total_p), static_cast<std::size_t>(r.total_l))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-controller implementation detail.
  std::printf("implementation detail (our method):\n");
  for (const auto& [name, st] : ours.per)
    std::printf("  %-5s: %s\n", name.c_str(), describe(st).c_str());

  // The trend the figure demonstrates: the transformations collapse the
  // gate level.  Same synthesis backend across all three rows.
  std::printf("\ntrend across optimization levels (same backend, shared counting):\n");
  Table trend({"experiment", "total products", "total literals"});
  struct Variant {
    const char* label;
    bool gt, lt;
  };
  std::size_t unopt_l = 0, opt_l = 0;
  for (const Variant v : {Variant{"unoptimized", false, false},
                          Variant{"optimized-GT", true, false},
                          Variant{"optimized-GT-and-LT", true, true}}) {
    FlowResult fv = run_flow(diffeq(), v.gt, v.lt);
    Cells c = synthesize_all(fv);
    if (!v.gt) unopt_l = c.tl;
    if (v.gt && v.lt) opt_l = c.tl;
    trend.add_row({v.label, std::to_string(c.tp), std::to_string(c.tl)});
  }
  std::printf("%s", trend.to_string().c_str());
  if (unopt_l > 0)
    std::printf("literal reduction unoptimized -> GT+LT: %.0f%%\n",
                100.0 * (1.0 - static_cast<double>(opt_l) / static_cast<double>(unopt_l)));
  return 0;
}
