// Reproduction of the paper's Figure 12: "State Machine Comparison".
//
// For the DIFFEQ benchmark, three experiments — unoptimized, optimized-GT,
// optimized-GT-and-LT — reporting the number of communication channels and
// the state/transition counts of the four functional-unit controllers,
// next to the published rows (the paper's prototype and Yun et al.'s
// manual design).
//
// Channel counting note: our frontend derives 15 controller-controller
// arcs plus the two environment handshakes (START->LOOP, LOOP->END).  The
// paper reports 17 for the unoptimized design and 5 after the global
// transformations; we report both accountings (see EXPERIMENTS.md).

#include "common.hpp"

using namespace adc;
using namespace adc::bench;

int main() {
  std::printf("Figure 12 — state machine comparison (DIFFEQ)\n");
  std::printf("cells: controller #states/#transitions\n\n");

  Table t({"experiment", "#channels", "ALU1", "ALU2", "MUL1", "MUL2"});

  struct Variant {
    const char* label;
    bool gt, lt;
  };
  for (const Variant v : {Variant{"unoptimized", false, false},
                          Variant{"optimized-GT", true, false},
                          Variant{"optimized-GT-and-LT", true, true}}) {
    FlowResult f = run_flow(diffeq(), v.gt, v.lt);
    std::string channels =
        std::to_string(f.plan.count_controller_channels()) + " (+" +
        std::to_string(f.plan.count_all_channels() - f.plan.count_controller_channels()) +
        " env)";
    auto cell = [&f](const char* name) {
      const auto& m = controller(f, name).machine;
      return pair_cell(m.state_count(), m.transition_count());
    };
    t.add_row({v.label, channels, cell("ALU1"), cell("ALU2"), cell("MUL1"), cell("MUL2")});
  }
  t.add_separator();
  for (const auto& r : paper_fig12()) {
    t.add_row({r.label, std::to_string(r.channels),
               pair_cell(static_cast<std::size_t>(r.alu1_s), static_cast<std::size_t>(r.alu1_t)),
               pair_cell(static_cast<std::size_t>(r.alu2_s), static_cast<std::size_t>(r.alu2_t)),
               pair_cell(static_cast<std::size_t>(r.mul1_s), static_cast<std::size_t>(r.mul1_t)),
               pair_cell(static_cast<std::size_t>(r.mul2_s), static_cast<std::size_t>(r.mul2_t))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // The per-stage change log of the global pipeline (what the transforms did).
  FlowResult f = run_flow(diffeq(), true, true);
  std::printf("global transformation log:\n");
  for (const auto& s : f.stages) {
    std::printf("  %s: -%d arcs, +%d arcs, %d node merges, %d channel merges\n",
                s.name.c_str(), s.arcs_removed, s.arcs_added, s.nodes_merged,
                s.channels_merged);
    for (const auto& n : s.notes) std::printf("      %s\n", n.c_str());
  }
  return 0;
}
