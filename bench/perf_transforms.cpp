// Scalability of the transformation engine itself (google-benchmark): the
// paper positions the transforms as primitives for scripted design-space
// exploration, so their runtime on growing CDFGs matters.

#include <benchmark/benchmark.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "runtime/flow.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

RandomProgramParams sized(int stmts) {
  RandomProgramParams p;
  p.alus = 3;
  p.mults = 2;
  p.stmts = stmts;
  p.regs = 8;
  return p;
}

void BM_FrontendArcGeneration(benchmark::State& state) {
  auto p = sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Cdfg g = random_program(p, 42);
    benchmark::DoNotOptimize(g.live_arc_count());
  }
}
BENCHMARK(BM_FrontendArcGeneration)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_GlobalPipeline(benchmark::State& state) {
  auto p = sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Cdfg g = random_program(p, 42);
    state.ResumeTiming();
    auto res = run_global_transforms(g);
    benchmark::DoNotOptimize(res.plan.count_controller_channels());
  }
}
BENCHMARK(BM_GlobalPipeline)->Arg(10)->Arg(20)->Arg(40);

void BM_Gt2DominatedOnly(benchmark::State& state) {
  auto p = sized(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    Cdfg g = random_program(p, 42);
    state.ResumeTiming();
    auto res = gt2_remove_dominated(g);
    benchmark::DoNotOptimize(res.arcs_removed);
  }
}
BENCHMARK(BM_Gt2DominatedOnly)->Arg(10)->Arg(20)->Arg(40)->Arg(80);

void BM_ExtractionPlusLt(benchmark::State& state) {
  auto p = sized(static_cast<int>(state.range(0)));
  Cdfg g = random_program(p, 42);
  auto res = run_global_transforms(g);
  for (auto _ : state) {
    auto controllers = extract_controllers(g, res.plan);
    for (auto& c : controllers) run_local_transforms(c);
    benchmark::DoNotOptimize(controllers.size());
  }
}
BENCHMARK(BM_ExtractionPlusLt)->Arg(10)->Arg(20)->Arg(40);

void BM_LogicSynthesisDiffeq(benchmark::State& state) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  auto controllers = extract_controllers(g, res.plan);
  for (auto& c : controllers) run_local_transforms(c);
  for (auto _ : state) {
    std::size_t lits = 0;
    for (const auto& c : controllers) lits += synthesize_logic(c).literal_count(true);
    benchmark::DoNotOptimize(lits);
  }
}
BENCHMARK(BM_LogicSynthesisDiffeq);

void BM_TokenSimulationDiffeq(benchmark::State& state) {
  Cdfg g = diffeq();
  run_global_transforms(g);
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", state.range(0)}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  for (auto _ : state) {
    auto r = run_token_sim(g, init);
    benchmark::DoNotOptimize(r.finish_time);
  }
}
BENCHMARK(BM_TokenSimulationDiffeq)->Arg(8)->Arg(64);

// --- parallel synthesis runtime ------------------------------------------

void BM_FlowExecutorCold(benchmark::State& state) {
  // Full flow (frontend -> transforms -> extract -> logic, no sim) with the
  // stage cache disabled: the serial baseline cost of one design point.
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"),
                                         "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  req.simulate = false;
  for (auto _ : state) {
    FlowExecutor::Options o;
    o.cache_capacity = 0;
    FlowExecutor exec(nullptr, o);
    auto p = exec.run(req);
    benchmark::DoNotOptimize(p.literals);
  }
}
BENCHMARK(BM_FlowExecutorCold)->Unit(benchmark::kMillisecond);

void BM_FlowExecutorWarm(benchmark::State& state) {
  // The same point served from a warm stage cache — the steady-state cost
  // of a repeated recipe in a DSE batch.
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"),
                                         "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  req.simulate = false;
  FlowExecutor exec(nullptr);
  exec.run(req);  // prime
  for (auto _ : state) {
    auto p = exec.run(req);
    benchmark::DoNotOptimize(p.literals);
  }
}
BENCHMARK(BM_FlowExecutorWarm)->Unit(benchmark::kMicrosecond);

void BM_ThreadPoolSubmitDrain(benchmark::State& state) {
  // Raw pool overhead: submit N trivial tasks and drain them.
  ThreadPool pool(2);
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::atomic<int> hits{0};
    for (int i = 0; i < n; ++i)
      pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
    pool.wait_idle();
    benchmark::DoNotOptimize(hits.load());
  }
}
BENCHMARK(BM_ThreadPoolSubmitDrain)->Arg(64)->Arg(512);

void BM_StageCacheHit(benchmark::State& state) {
  StageCache cache;
  Fingerprint key = FingerprintBuilder().add("bench-key").digest();
  cache.get_or_compute<int>(key, [] { return 42; });
  for (auto _ : state) {
    auto v = cache.get_or_compute<int>(key, [] { return 42; });
    benchmark::DoNotOptimize(*v);
  }
}
BENCHMARK(BM_StageCacheHit);

}  // namespace
}  // namespace adc

BENCHMARK_MAIN();
