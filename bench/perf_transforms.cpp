// perf_transforms — scalability of the transformation engine itself: the
// paper positions the transforms as primitives for scripted design-space
// exploration, so their runtime on growing CDFGs matters.
//
// Runs on the in-tree perf harness (perf/measure.hpp) and emits the same
// BENCH JSON schema as adc_bench, so a saved run diffs against any other
// driver's baseline with `adc_bench --diff`.
//
//   ./build/bench/perf_transforms [--json FILE] [--quick] [--filter STR]
//                                 [--repeats N] [--warmup N]

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "perf/measure.hpp"
#include "runtime/flow.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

using namespace adc;

namespace {

RandomProgramParams sized(int stmts) {
  RandomProgramParams p;
  p.alus = 3;
  p.mults = 2;
  p.stmts = stmts;
  p.regs = 8;
  return p;
}

void add(const char* suite, std::string name,
         std::function<void(perf::BenchContext&)> fn) {
  perf::BenchRegistry::instance().add({suite, std::move(name), std::move(fn)});
}

void register_benchmarks() {
  for (int n : {10, 20, 40, 80})
    add("frontend", "frontend.arcgen_n" + std::to_string(n),
        [n](perf::BenchContext& ctx) {
          Cdfg g = random_program(sized(n), 42);
          ctx.counters["arcs"] = static_cast<double>(g.live_arc_count());
        });

  for (int n : {10, 20, 40})
    add("gt", "gt.pipeline_n" + std::to_string(n), [n](perf::BenchContext& ctx) {
      Cdfg g = random_program(sized(n), 42);
      auto res = run_global_transforms(g);
      ctx.counters["channels"] =
          static_cast<double>(res.plan.count_controller_channels());
    });

  for (int n : {10, 20, 40, 80})
    add("gt", "gt.gt2_dominated_n" + std::to_string(n),
        [n](perf::BenchContext& ctx) {
          Cdfg g = random_program(sized(n), 42);
          auto res = gt2_remove_dominated(g);
          ctx.counters["arcs_removed"] = static_cast<double>(res.arcs_removed);
        });

  // Extraction + LT on a pre-transformed graph (built lazily, during the
  // warmup, and shared across repeats so only extraction itself is timed).
  for (int n : {10, 20, 40})
    add("lt", "lt.extract_plus_lt_n" + std::to_string(n),
        [n, prepared = std::shared_ptr<std::pair<Cdfg, ChannelPlan>>()](
            perf::BenchContext& ctx) mutable {
          if (!prepared) {
            Cdfg g = random_program(sized(n), 42);
            auto res = run_global_transforms(g);
            prepared = std::make_shared<std::pair<Cdfg, ChannelPlan>>(
                std::move(g), std::move(res.plan));
          }
          auto controllers = extract_controllers(prepared->first, prepared->second);
          for (auto& c : controllers) run_local_transforms(c);
          ctx.counters["controllers"] = static_cast<double>(controllers.size());
        });

  add("logic", "logic.minimize_diffeq",
      [prepared = std::shared_ptr<std::vector<ExtractedController>>()](
          perf::BenchContext& ctx) mutable {
        if (!prepared) {
          Cdfg g = diffeq();
          auto res = run_global_transforms(g);
          auto controllers = extract_controllers(g, res.plan);
          for (auto& c : controllers) run_local_transforms(c);
          prepared = std::make_shared<std::vector<ExtractedController>>(
              std::move(controllers));
        }
        std::size_t lits = 0;
        for (const auto& c : *prepared) lits += synthesize_logic(c).literal_count(true);
        ctx.counters["literals"] = static_cast<double>(lits);
      });

  // Stage-local slices of the minimizer: candidate growth and the two
  // covering strategies over the same per-function specifications.
  add("logic", "logic.candidates_diffeq",
      [specs = std::shared_ptr<std::vector<FunctionSpec>>()](
          perf::BenchContext& ctx) mutable {
        if (!specs) {
          Cdfg g = diffeq();
          auto res = run_global_transforms(g);
          auto controllers = extract_controllers(g, res.plan);
          specs = std::make_shared<std::vector<FunctionSpec>>();
          for (auto& c : controllers) {
            run_local_transforms(c);
            ConcreteMachine cm = concretize(c.machine, &c.bindings);
            Encoding enc = assign_codes(cm);
            const std::size_t n_out = cm.output_names.size();
            for (std::size_t fi = 0; fi < n_out + enc.bits; ++fi) {
              const bool sb = fi >= n_out;
              specs->push_back(
                  build_function_spec(cm, enc, sb, sb ? fi - n_out : fi, "f"));
            }
          }
        }
        std::size_t candidates = 0;
        for (const auto& f : *specs) candidates += candidate_implicants(f).size();
        ctx.counters["candidates"] = static_cast<double>(candidates);
      });

  for (std::int64_t a : {std::int64_t{8}, std::int64_t{64}})
    add("sim", "sim.token_diffeq_a" + std::to_string(a),
        [a, prepared = std::shared_ptr<Cdfg>()](perf::BenchContext& ctx) mutable {
          if (!prepared) {
            prepared = std::make_shared<Cdfg>(diffeq());
            run_global_transforms(*prepared);
          }
          std::map<std::string, std::int64_t> init{{"X", 0}, {"a", a},  {"dx", 1},
                                                   {"U", 3}, {"Y", 1},  {"X1", 0},
                                                   {"C", 1}};
          auto r = run_token_sim(*prepared, init);
          ctx.counters["finish_time"] = static_cast<double>(r.finish_time);
        });

  // --- parallel synthesis runtime ------------------------------------------

  add("flow", "flow.cold_diffeq", [](perf::BenchContext& ctx) {
    // Full flow (frontend -> transforms -> extract -> logic, no sim) with
    // the stage cache disabled: the serial baseline cost of one point.
    FlowRequest req = make_builtin_request(*find_builtin("diffeq"),
                                           "gt1; gt2; gt3; gt4; gt2; gt5; lt");
    req.simulate = false;
    FlowExecutor::Options o;
    o.cache_capacity = 0;
    FlowExecutor exec(nullptr, o);
    auto p = exec.run(req);
    ctx.counters["literals"] = static_cast<double>(p.literals);
  });

  add("flow", "flow.warm_diffeq",
      [exec = std::shared_ptr<FlowExecutor>()](perf::BenchContext& ctx) mutable {
        // The same point served from a warm stage cache — the steady-state
        // cost of a repeated recipe in a DSE batch.
        FlowRequest req = make_builtin_request(*find_builtin("diffeq"),
                                               "gt1; gt2; gt3; gt4; gt2; gt5; lt");
        req.simulate = false;
        if (!exec) {
          exec = std::make_shared<FlowExecutor>(nullptr);
          exec->run(req);  // prime
        }
        auto p = exec->run(req);
        ctx.counters["literals"] = static_cast<double>(p.literals);
      });

  for (int n : {64, 512})
    add("pool", "pool.submit_drain_n" + std::to_string(n),
        [n, pool = std::shared_ptr<ThreadPool>()](perf::BenchContext& ctx) mutable {
          // Raw pool overhead: submit N trivial tasks and drain them.
          if (!pool) pool = std::make_shared<ThreadPool>(2);
          std::atomic<int> hits{0};
          for (int i = 0; i < n; ++i)
            pool->submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
          pool->wait_idle();
          ctx.counters["tasks"] = hits.load();
        });

  add("cache", "cache.hit",
      [cache = std::shared_ptr<StageCache>()](perf::BenchContext& ctx) mutable {
        Fingerprint key = FingerprintBuilder().add("bench-key").digest();
        if (!cache) {
          cache = std::make_shared<StageCache>();
          cache->get_or_compute<int>(key, [] { return 42; });
        }
        long long sink = 0;
        for (int i = 0; i < 1000; ++i)
          sink += *cache->get_or_compute<int>(key, [] { return 42; });
        ctx.counters["lookups"] = 1000;
        (void)sink;
      });
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, filter;
  perf::MeasureOptions opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_transforms: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--json") json_path = next();
    else if (arg == "--quick") opts = perf::MeasureOptions::quick_mode();
    else if (arg == "--filter") filter = next();
    else if (arg == "--repeats") opts.repeats = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--warmup") opts.warmup = static_cast<unsigned>(std::stoul(next()));
    else {
      std::fprintf(stderr,
                   "usage: perf_transforms [--json FILE] [--quick] "
                   "[--filter STR] [--repeats N] [--warmup N]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    }
  }

  register_benchmarks();
  perf::BenchReport rep = perf::run_registered({}, filter, opts, "perf_transforms");
  std::printf("%s", perf::render_report(rep).c_str());
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << perf::to_json(rep) << "\n";
    if (!out) {
      std::fprintf(stderr, "perf_transforms: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "perf_transforms: wrote %s\n", json_path.c_str());
  }
  return 0;
}
