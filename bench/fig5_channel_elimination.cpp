// Reproduction of the paper's Figure 5: "GT5: Channel Elimination for
// DIFFEQ" — the communication structure before and after the GT5
// transforms (multiplexing, concurrency reduction, symmetrization), going
// from ten channels to five with two multi-way channels.

#include "common.hpp"
#include "transforms/global.hpp"
#include "transforms/gt5.hpp"

using namespace adc;
using namespace adc::bench;

namespace {

void print_channels(const Cdfg& g, const ChannelPlan& plan, const char* title) {
  std::printf("%s (%zu controller channels, %zu multi-way):\n", title,
              plan.count_controller_channels(), plan.count_multiway());
  for (const auto& c : plan.channels()) {
    if (c.involves_environment()) continue;
    std::printf("  %-34s wire %s\n", describe(c, g).c_str(), c.wire.c_str());
    for (const auto& e : c.events)
      std::printf("      event: done of '%s'\n", g.node(e.source).label().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 5 — GT5 channel elimination for DIFFEQ\n\n");

  // Left side of the figure: after GT1-GT4, one channel per arc.
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  gt3_relative_timing(g, DelayModel::typical());
  gt4_merge_assignments(g);
  gt2_remove_dominated(g);
  auto before = ChannelPlan::derive(g);
  print_channels(g, before, "before GT5 (Figure 5 left)");

  // Right side: after multiplexing / symmetrization.
  auto res = gt5_channel_elimination(g);
  print_channels(g, res.plan, "after GT5 (Figure 5 right)");

  std::printf("paper: ten channels -> five, including two multi-way channels\n");
  std::printf("ours : %zu -> %zu, including %zu multi-way channels\n",
              before.count_controller_channels(),
              res.plan.count_controller_channels(), res.plan.count_multiway());

  std::printf("\nGT5 change log:\n");
  for (const auto& n : res.stats.notes) std::printf("  %s\n", n.c_str());
  return 0;
}
