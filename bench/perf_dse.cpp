// perf_dse — wall-clock scaling of batch design-space exploration.
//
// Evaluates the 32-recipe GT ablation grid on DIFFEQ (the Figure 12/13
// sweep) at increasing worker counts, cold-cache and shared-cache, and
// reports wall time, speedup over the 1-job cold run, and the stage-cache
// hit rate.  Two effects compose:
//
//  * the pool spreads independent recipe evaluations across cores
//    (bounded by the machine — on a 1-core host expect ~1x from threads);
//  * the content-addressed cache removes the recomputation recipes
//    sharing script prefixes would otherwise repeat (machine-independent).
//
//   ./build/bench/perf_dse [--jobs 1,2,4,8] [--no-sim] [--json FILE]
//
// --json emits the BENCH JSON schema (perf/record.hpp): one record per
// (jobs, cache-mode) run with the measured batch wall time and the cache
// hit rate / point counts as counters — the same record structure
// adc_bench writes, so saved runs diff with `adc_bench --diff`.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "perf/measure.hpp"
#include "report/table.hpp"
#include "runtime/flow.hpp"

using namespace adc;

namespace {

struct Run {
  std::size_t jobs;
  const char* mode;
  std::int64_t wall_ms = 0;
  std::uint64_t cpu_us = 0;
  CacheStats cache;
  std::size_t ok_points = 0;
  std::size_t points = 0;
};

std::int64_t timed_batch(FlowExecutor& exec, const std::vector<FlowRequest>& reqs, Run& r) {
  auto t0 = std::chrono::steady_clock::now();
  auto points = exec.run_all(reqs);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  r.points = points.size();
  r.ok_points = 0;
  for (const auto& p : points)
    if (p.ok) ++r.ok_points;
  return ms;
}

// mode: "off" = cache disabled, "cold" = fresh cache, "warm" = a second
// evaluation of the same grid on the now-populated cache (only the
// uncacheable simulation stage recomputes).
Run measure(const std::vector<FlowRequest>& reqs, std::size_t jobs, const char* mode) {
  Run r;
  r.jobs = jobs;
  r.mode = mode;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);
  FlowExecutor::Options o;
  if (!std::strcmp(mode, "off")) o.cache_capacity = 0;
  FlowExecutor exec(pool.get(), o);
  std::uint64_t c0 = perf::process_cpu_micros();
  r.wall_ms = timed_batch(exec, reqs, r);
  if (!std::strcmp(mode, "warm")) {
    c0 = perf::process_cpu_micros();
    r.wall_ms = timed_batch(exec, reqs, r);
  }
  r.cpu_us = perf::process_cpu_micros() - c0;
  r.cache = exec.cache().stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> jobs = {1, 2, 4, 8};
  bool simulate = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--no-sim")) simulate = false;
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs.clear();
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) jobs.push_back(std::stoul(item));
    }
    else if (!std::strcmp(argv[i], "--json") && i + 1 < argc) json_path = argv[++i];
  }

  const BuiltinBenchmark* diffeq_bench = find_builtin("diffeq");
  std::vector<FlowRequest> reqs;
  for (const auto& script : gt_ablation_grid(true)) {
    FlowRequest req = make_builtin_request(*diffeq_bench, script);
    req.simulate = simulate;
    reqs.push_back(std::move(req));
  }

  std::printf("perf_dse: 32-recipe GT ablation grid on DIFFEQ (%zu points, "
              "hardware=%u)\n\n",
              reqs.size(), std::thread::hardware_concurrency());

  std::vector<Run> runs;
  for (std::size_t j : jobs) runs.push_back(measure(reqs, j, "off"));
  for (std::size_t j : jobs) runs.push_back(measure(reqs, j, "cold"));
  runs.push_back(measure(reqs, 1, "warm"));

  double base = static_cast<double>(runs.front().wall_ms);
  Table t({"jobs", "stage cache", "wall ms", "speedup", "cache hit rate", "ok"});
  for (const auto& r : runs) {
    char speedup[32], rate[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  r.wall_ms > 0 ? base / static_cast<double>(r.wall_ms) : 0.0);
    std::snprintf(rate, sizeof rate, "%.0f%%", 100.0 * r.cache.hit_rate());
    t.add_row({std::to_string(r.jobs), r.mode, std::to_string(r.wall_ms), speedup,
               std::strcmp(r.mode, "off") ? rate : "-",
               std::to_string(r.ok_points) + "/" + std::to_string(r.points)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nspeedup is relative to jobs=1 with the cache off (the serial\n"
      "pre-runtime flow).  \"warm\" re-evaluates the grid on the populated\n"
      "cache: only the (deliberately uncacheable) verification simulations\n"
      "recompute.  Points that are not ok deadlock in simulation: GT5\n"
      "without the GT2/GT3 cleanup yields unverifiable systems, a genuine\n"
      "property of those recipes that the flow's oracle reports.\n");

  if (!json_path.empty()) {
    perf::BenchReport rep;
    rep.tool = "perf_dse";
    rep.env = perf::capture_env();
    rep.policy.warmup = 0;
    rep.policy.repeats = 1;
    rep.policy.trim_outliers = false;
    for (const auto& r : runs) {
      perf::BenchRecord rec;
      rec.suite = "dse";
      rec.name = "dse.grid_" + std::string(r.mode) + "_j" + std::to_string(r.jobs);
      rec.repeats = 1;
      rec.wall_us = perf::stat_from_samples(
          {static_cast<double>(r.wall_ms) * 1000.0}, false);
      rec.cpu_us =
          perf::stat_from_samples({static_cast<double>(r.cpu_us)}, false);
      rec.peak_rss_kb = perf::peak_rss_kb();
      rec.counters["points"] = static_cast<double>(r.points);
      rec.counters["ok_points"] = static_cast<double>(r.ok_points);
      rec.counters["cache_hit_rate"] = r.cache.hit_rate();
      rep.benchmarks.push_back(std::move(rec));
    }
    std::ofstream out(json_path);
    out << perf::to_json(rep) << "\n";
    if (!out) {
      std::fprintf(stderr, "perf_dse: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "perf_dse: wrote %s\n", json_path.c_str());
  }
  return 0;
}
