// perf_dse — wall-clock scaling of batch design-space exploration.
//
// Evaluates the 32-recipe GT ablation grid on DIFFEQ (the Figure 12/13
// sweep) at increasing worker counts, cold-cache and shared-cache, and
// reports wall time, speedup over the 1-job cold run, and the stage-cache
// hit rate.  Two effects compose:
//
//  * the pool spreads independent recipe evaluations across cores
//    (bounded by the machine — on a 1-core host expect ~1x from threads);
//  * the content-addressed cache removes the recomputation recipes
//    sharing script prefixes would otherwise repeat (machine-independent).
//
//   ./build/bench/perf_dse [--jobs 1,2,4,8] [--no-sim]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "report/table.hpp"
#include "runtime/flow.hpp"

using namespace adc;

namespace {

struct Run {
  std::size_t jobs;
  const char* mode;
  std::int64_t wall_ms = 0;
  CacheStats cache;
  std::size_t ok_points = 0;
  std::size_t points = 0;
};

std::int64_t timed_batch(FlowExecutor& exec, const std::vector<FlowRequest>& reqs, Run& r) {
  auto t0 = std::chrono::steady_clock::now();
  auto points = exec.run_all(reqs);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  r.points = points.size();
  r.ok_points = 0;
  for (const auto& p : points)
    if (p.ok) ++r.ok_points;
  return ms;
}

// mode: "off" = cache disabled, "cold" = fresh cache, "warm" = a second
// evaluation of the same grid on the now-populated cache (only the
// uncacheable simulation stage recomputes).
Run measure(const std::vector<FlowRequest>& reqs, std::size_t jobs, const char* mode) {
  Run r;
  r.jobs = jobs;
  r.mode = mode;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs);
  FlowExecutor::Options o;
  if (!std::strcmp(mode, "off")) o.cache_capacity = 0;
  FlowExecutor exec(pool.get(), o);
  r.wall_ms = timed_batch(exec, reqs, r);
  if (!std::strcmp(mode, "warm")) r.wall_ms = timed_batch(exec, reqs, r);
  r.cache = exec.cache().stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> jobs = {1, 2, 4, 8};
  bool simulate = true;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--no-sim")) simulate = false;
    else if (!std::strcmp(argv[i], "--jobs") && i + 1 < argc) {
      jobs.clear();
      std::stringstream ss(argv[++i]);
      std::string item;
      while (std::getline(ss, item, ',')) jobs.push_back(std::stoul(item));
    }
  }

  const BuiltinBenchmark* diffeq_bench = find_builtin("diffeq");
  std::vector<FlowRequest> reqs;
  for (const auto& script : gt_ablation_grid(true)) {
    FlowRequest req = make_builtin_request(*diffeq_bench, script);
    req.simulate = simulate;
    reqs.push_back(std::move(req));
  }

  std::printf("perf_dse: 32-recipe GT ablation grid on DIFFEQ (%zu points, "
              "hardware=%u)\n\n",
              reqs.size(), std::thread::hardware_concurrency());

  std::vector<Run> runs;
  for (std::size_t j : jobs) runs.push_back(measure(reqs, j, "off"));
  for (std::size_t j : jobs) runs.push_back(measure(reqs, j, "cold"));
  runs.push_back(measure(reqs, 1, "warm"));

  double base = static_cast<double>(runs.front().wall_ms);
  Table t({"jobs", "stage cache", "wall ms", "speedup", "cache hit rate", "ok"});
  for (const auto& r : runs) {
    char speedup[32], rate[32];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  r.wall_ms > 0 ? base / static_cast<double>(r.wall_ms) : 0.0);
    std::snprintf(rate, sizeof rate, "%.0f%%", 100.0 * r.cache.hit_rate());
    t.add_row({std::to_string(r.jobs), r.mode, std::to_string(r.wall_ms), speedup,
               std::strcmp(r.mode, "off") ? rate : "-",
               std::to_string(r.ok_points) + "/" + std::to_string(r.points)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nspeedup is relative to jobs=1 with the cache off (the serial\n"
      "pre-runtime flow).  \"warm\" re-evaluates the grid on the populated\n"
      "cache: only the (deliberately uncacheable) verification simulations\n"
      "recompute.  Points that are not ok deadlock in simulation: GT5\n"
      "without the GT2/GT3 cleanup yields unverifiable systems, a genuine\n"
      "property of those recipes that the flow's oracle reports.\n");
  return 0;
}
