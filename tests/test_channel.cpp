// Channel plan derivation, queries, wire naming.

#include <gtest/gtest.h>

#include "channel/naming.hpp"
#include "frontend/benchmarks.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

TEST(Channel, DeriveOneChannelPerInterControllerArc) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  std::size_t inter = 0;
  for (ArcId a : g.arc_ids())
    if (g.node(g.arc(a).src).fu != g.node(g.arc(a).dst).fu) ++inter;
  EXPECT_EQ(plan.count_all_channels(), inter);
  EXPECT_TRUE(plan.validate(g).empty());
}

TEST(Channel, EnvironmentChannelsSeparated) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  EXPECT_EQ(plan.count_all_channels() - plan.count_controller_channels(), 2u)
      << "START->LOOP and LOOP->END";
}

TEST(Channel, ChannelOfFindsCarrier) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  for (ArcId a : g.arc_ids()) {
    bool inter = g.node(g.arc(a).src).fu != g.node(g.arc(a).dst).fu;
    EXPECT_EQ(plan.channel_of(a).has_value(), inter);
  }
}

TEST(Channel, InputsAndOutputsOfFu) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  FuId mul2 = *g.find_fu("MUL2");
  auto in = res.plan.inputs_of(mul2);
  auto out = res.plan.outputs_of(mul2);
  EXPECT_EQ(in.size(), 2u) << "LOOP broadcast + ALU1 multi-way";
  EXPECT_EQ(out.size(), 1u) << "M2 result to ALU2";
}

TEST(Channel, WireNamesAreUniqueAndDescriptive) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  std::set<std::string> names;
  for (const auto& c : plan.channels()) {
    EXPECT_TRUE(names.insert(c.wire).second) << "duplicate wire " << c.wire;
    EXPECT_EQ(c.wire.rfind("rdy_", 0), 0u) << c.wire;
  }
}

TEST(Channel, ShortNamesAbbreviateFus) {
  Cdfg g = diffeq();
  EXPECT_EQ(abbreviate_fu(g, *g.find_fu("ALU1")), "A1");
  EXPECT_EQ(abbreviate_fu(g, *g.find_fu("MUL2")), "M2");
  EXPECT_EQ(abbreviate_fu(g, FuId::invalid()), "ENV");
  auto plan = ChannelPlan::derive(g);
  for (const auto& c : plan.channels()) {
    std::string s = short_wire_name(g, c);
    EXPECT_FALSE(s.empty());
  }
}

TEST(Channel, MultiwayDescribe) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  bool saw_multiway = false;
  for (const auto& c : res.plan.channels()) {
    if (!c.multiway()) continue;
    saw_multiway = true;
    EXPECT_GE(c.receivers.size(), 2u);
    std::string d = describe(c, g);
    EXPECT_NE(d.find(","), std::string::npos) << d;
  }
  EXPECT_TRUE(saw_multiway);
}

TEST(Channel, ValidateCatchesDanglingArcs) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  // Kill an arc the plan still references.
  for (ArcId a : g.arc_ids()) {
    if (g.node(g.arc(a).src).fu != g.node(g.arc(a).dst).fu) {
      g.remove_arc(a);
      break;
    }
  }
  EXPECT_FALSE(plan.validate(g).empty());
}

TEST(Channel, ArcCountAggregatesEvents) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  for (const auto& c : res.plan.channels()) {
    std::size_t n = 0;
    for (const auto& e : c.events) n += e.arcs.size();
    EXPECT_EQ(c.arc_count(), n);
  }
}

}  // namespace
}  // namespace adc
