// End-to-end two-level synthesis of controllers: feasibility, cover
// verification, encoding quality, and the Figure 13 trend (GT+LT shrinks
// the gate level dramatically).

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/cover.hpp"
#include "logic/minimize.hpp"
#include "logic/stats.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

std::vector<ExtractedController> optimized_controllers(Cdfg& g) {
  auto res = run_global_transforms(g);
  auto cs = extract_controllers(g, res.plan);
  for (auto& c : cs) run_local_transforms(c);
  return cs;
}

TEST(Logic, DiffeqControllersSynthesizeFeasibly) {
  Cdfg g = diffeq();
  for (auto& c : optimized_controllers(g)) {
    auto r = synthesize_logic(c);
    EXPECT_TRUE(r.feasible()) << c.machine.name() << ": "
                              << (r.issues.empty() ? "" : r.issues[0]);
    EXPECT_GT(r.product_count(true), 0u);
    EXPECT_GT(r.literal_count(true), 0u);
  }
}

TEST(Logic, CoversVerifyAgainstTheirSpecs) {
  Cdfg g = diffeq();
  for (auto& c : optimized_controllers(g)) {
    auto r = synthesize_logic(c);
    for (std::size_t i = 0; i < r.functions.size(); ++i) {
      const auto& fl = r.functions[i];
      FunctionSpec spec = build_function_spec(
          r.machine, r.encoding, fl.is_state_bit,
          fl.is_state_bit ? i - r.machine.output_names.size() : i, fl.name);
      EXPECT_TRUE(verify_cover(spec, fl.products).empty())
          << c.machine.name() << "/" << fl.name;
    }
  }
}

TEST(Logic, SharedCountsNeverExceedSingleOutputCounts) {
  Cdfg g = diffeq();
  for (auto& c : optimized_controllers(g)) {
    auto r = synthesize_logic(c);
    EXPECT_LE(r.product_count(true), r.product_count(false));
    EXPECT_LE(r.literal_count(true), r.literal_count(false));
  }
}

TEST(Logic, Figure13TrendLtShrinksGateLevel) {
  // The paper's Figure 13 point: the transformed controllers are far
  // smaller than naive ones.  Compare gate-level size of unoptimized vs
  // GT+LT controllers.
  Cdfg g1 = diffeq();
  auto plan1 = ChannelPlan::derive(g1);
  std::size_t unopt_lits = 0;
  for (auto& c : extract_controllers(g1, plan1)) {
    auto r = synthesize_logic(c);
    unopt_lits += r.literal_count(true);
  }
  Cdfg g2 = diffeq();
  std::size_t opt_lits = 0;
  for (auto& c : optimized_controllers(g2)) {
    auto r = synthesize_logic(c);
    opt_lits += r.literal_count(true);
  }
  EXPECT_LT(opt_lits, unopt_lits)
      << "optimized " << opt_lits << " vs unoptimized " << unopt_lits;
  EXPECT_LT(opt_lits * 3, unopt_lits * 2) << "expect at least ~30% reduction";
}

TEST(Logic, EncodingMostTransitionsDistanceOne) {
  Cdfg g = diffeq();
  for (auto& c : optimized_controllers(g)) {
    auto r = synthesize_logic(c);
    EXPECT_GE(r.encoding.distance1 * 10, r.encoding.total * 7)
        << c.machine.name() << ": " << r.encoding.distance1 << "/"
        << r.encoding.total << " distance-1 transitions";
  }
}

TEST(Logic, EncodingCodesAreUnique) {
  Cdfg g = diffeq();
  for (auto& c : optimized_controllers(g)) {
    auto cm = concretize(c.machine, &c.bindings);
    auto enc = assign_codes(cm);
    std::set<std::uint32_t> codes(enc.code.begin(), enc.code.end());
    EXPECT_EQ(codes.size(), cm.states.size()) << c.machine.name();
    for (auto code : codes) EXPECT_LT(code, 1u << enc.bits);
  }
}

TEST(Logic, GateStatsDescribe) {
  Cdfg g = diffeq();
  auto cs = optimized_controllers(g);
  auto r = synthesize_logic(cs[0]);
  auto st = gate_stats(r, cs[0].machine.state_count());
  EXPECT_TRUE(st.feasible);
  EXPECT_EQ(st.spec_states, cs[0].machine.state_count());
  EXPECT_GE(st.impl_states, st.spec_states);
  std::string d = describe(st);
  EXPECT_NE(d.find("products"), std::string::npos);
  EXPECT_NE(d.find("state bits"), std::string::npos);
}

TEST(Logic, AllBenchmarksSynthesize) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    for (auto& c : optimized_controllers(g)) {
      auto r = synthesize_logic(c);
      EXPECT_TRUE(r.feasible()) << g.name() << "/" << c.machine.name() << ": "
                                << (r.issues.empty() ? "" : r.issues[0]);
    }
  }
}

TEST(Logic, ExactCoveringAvailable) {
  Cdfg g = diffeq();
  auto cs = optimized_controllers(g);
  for (auto& c : cs) {
    if (g.fu(c.fu).name != "MUL2") continue;
    SynthesisOptions heuristic;
    SynthesisOptions exact;
    exact.cover.exact = true;
    auto rh = synthesize_logic(c, heuristic);
    auto rx = synthesize_logic(c, exact);
    EXPECT_LE(rx.product_count(false), rh.product_count(false));
  }
}

}  // namespace
}  // namespace adc
