// XBM machine IR: construction, queries, validation rules, printing.

#include <gtest/gtest.h>

#include "xbm/print.hpp"
#include "xbm/validate.hpp"
#include "xbm/xbm.hpp"

namespace adc {
namespace {

// A minimal valid two-state 4-phase machine: req+/ack+ then req-/ack-.
Xbm handshake() {
  Xbm m("hs");
  SignalId req = m.add_signal("req", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId ack = m.add_signal("ack", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state("s0");
  StateId s1 = m.add_state("s1");
  m.set_initial(s0);
  m.add_transition(s0, s1, {rise(req)}, {rise(ack)});
  m.add_transition(s1, s0, {fall(req)}, {fall(ack)});
  return m;
}

TEST(Xbm, HandshakeValidates) {
  Xbm m = handshake();
  EXPECT_TRUE(validate(m).empty());
  EXPECT_EQ(m.state_count(), 2u);
  EXPECT_EQ(m.transition_count(), 2u);
  EXPECT_EQ(m.input_count(), 1u);
  EXPECT_EQ(m.output_count(), 1u);
}

TEST(Xbm, DuplicateSignalNameRejected) {
  Xbm m("d");
  m.add_signal("x", SignalKind::kInput, SignalRole::kGlobalReady);
  EXPECT_THROW(m.add_signal("x", SignalKind::kOutput, SignalRole::kLatch),
               std::invalid_argument);
}

TEST(Xbm, PolarityViolationDetected) {
  Xbm m("p");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {rise(a)}, {rise(y)});
  m.add_transition(s1, s0, {rise(a)}, {fall(y)});  // a rises twice: invalid
  auto errors = validate(m);
  bool found = false;
  for (const auto& e : errors)
    if (e.find("already") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Xbm, TogglePolarityIsPhaseFree) {
  Xbm m("t");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kGlobalReady);
  StateId s0 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s0, {toggle(a)}, {toggle(y)});  // odd cycle: fine for toggles
  EXPECT_TRUE(validate(m).empty());
}

TEST(Xbm, MaximalSetViolationDetected) {
  // Burst {a+} is a subset of {a+, b+} out of the same state with no
  // distinguishing conditional.
  Xbm m("ms");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId b = m.add_signal("b", SignalKind::kInput, SignalRole::kGlobalReady);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  StateId s2 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {rise(a)}, {});
  m.add_transition(s0, s2, {rise(a), rise(b)}, {});
  auto errors = validate(m);
  bool found = false;
  for (const auto& e : errors)
    if (e.find("maximal-set") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Xbm, ConditionalsDistinguishEqualBursts) {
  Xbm m("cond");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId c = m.add_signal("c", SignalKind::kInput, SignalRole::kConditional);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {toggle(a)}, {}, {CondTerm{c, true}});
  m.add_transition(s0, s0, {toggle(a)}, {}, {CondTerm{c, false}});
  EXPECT_TRUE(validate(m).empty());
}

TEST(Xbm, EmptyCompulsoryBurstRejected) {
  Xbm m("e");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {ddc(toggle(a))}, {});
  auto errors = validate(m);
  bool found = false;
  for (const auto& e : errors)
    if (e.find("compulsory") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Xbm, UnreachableStateDetected) {
  Xbm m = handshake();
  m.add_state("island");
  auto errors = validate(m);
  bool found = false;
  for (const auto& e : errors)
    if (e.find("unreachable") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Xbm, OutputInInputBurstRejected) {
  Xbm m("mix");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {rise(y)}, {rise(a)});
  auto errors = validate(m);
  EXPECT_GE(errors.size(), 2u);
}

TEST(Xbm, SweepDeadStates) {
  Xbm m = handshake();
  StateId orphan = m.add_state("orphan");
  m.sweep_dead_states();
  EXPECT_FALSE(m.state(orphan).alive);
  EXPECT_EQ(m.state_count(), 2u);
}

TEST(Xbm, InOutTransitionQueries) {
  Xbm m = handshake();
  StateId s0 = m.initial();
  EXPECT_EQ(m.out_transitions(s0).size(), 1u);
  EXPECT_EQ(m.in_transitions(s0).size(), 1u);
}

TEST(Xbm, PrintContainsSignalsAndBursts) {
  Xbm m = handshake();
  std::string text = to_text(m);
  EXPECT_NE(text.find("inputs req=0"), std::string::npos);
  EXPECT_NE(text.find("outputs ack=0"), std::string::npos);
  EXPECT_NE(text.find("req+ / ack+"), std::string::npos);
  EXPECT_NE(text.find("req- / ack-"), std::string::npos);
}

TEST(Xbm, PrintMarksDdcAndToggle) {
  Xbm m("marks");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId b = m.add_signal("b", SignalKind::kInput, SignalRole::kGlobalReady);
  StateId s0 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s0, {toggle(a), ddc(toggle(b))}, {});
  std::string text = to_text(m);
  EXPECT_NE(text.find("a~"), std::string::npos);
  EXPECT_NE(text.find("b~*"), std::string::npos);
}

}  // namespace
}  // namespace adc
