// Determinism regression tests.  The event simulator's randomized delays
// are driven entirely by EventSimOptions::seed — two runs with the same
// seed must agree event for event, so DSE reports are reproducible and
// cached flow points are indistinguishable from recomputed ones.

#include <gtest/gtest.h>

#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "runtime/flow.hpp"
#include "sim/event_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

struct System {
  Cdfg g{"empty"};
  ChannelPlan plan;
  std::vector<ControllerInstance> instances;
};

System build_mac() {
  System s;
  s.g = mac_reduce();
  auto res = run_global_transforms(s.g);
  s.plan = std::move(res.plan);
  for (auto& c : extract_controllers(s.g, s.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    s.instances.push_back(std::move(inst));
  }
  return s;
}

std::map<std::string, std::int64_t> mac_init() {
  return {{"X", 0}, {"K", 3}, {"T", 40}, {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}};
}

TEST(Determinism, SameSeedSameTrace) {
  System s = build_mac();
  EventSimOptions opts;
  opts.seed = 12345;
  opts.randomize_delays = true;
  EventSimResult a = run_event_sim(s.g, s.plan, s.instances, mac_init(), opts);
  EventSimResult b = run_event_sim(s.g, s.plan, s.instances, mac_init(), opts);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.operations, b.operations);
  EXPECT_EQ(a.registers, b.registers);
}

TEST(Determinism, DifferentSeedsStillConverge) {
  // Different seeds reorder concurrent events (different finish times are
  // expected and fine) but the final register file — the program's result —
  // must not depend on the delay draw.
  System s = build_mac();
  EventSimOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 99;
  EventSimResult a = run_event_sim(s.g, s.plan, s.instances, mac_init(), a_opts);
  EventSimResult b = run_event_sim(s.g, s.plan, s.instances, mac_init(), b_opts);
  ASSERT_TRUE(a.completed) << a.error;
  ASSERT_TRUE(b.completed) << b.error;
  EXPECT_EQ(a.registers, b.registers);
}

TEST(Determinism, FlowPointIsReproducibleWithRandomizedDelays) {
  // Same request (same seed) through two independent executors — including
  // one that recomputes everything with the cache disabled — must report
  // identical simulation observables.
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"),
                                         "gt1; gt2; gt4; gt2; gt5; lt");
  req.sim.randomize_delays = true;
  req.sim.seed = 7;

  FlowExecutor warm(nullptr);
  FlowPoint p1 = warm.run(req);
  FlowPoint p2 = warm.run(req);  // cached artifacts, fresh simulation
  FlowExecutor::Options cold_opts;
  cold_opts.cache_capacity = 0;
  FlowExecutor cold(nullptr, cold_opts);
  FlowPoint p3 = cold.run(req);

  ASSERT_TRUE(p1.ok) << p1.error;
  ASSERT_TRUE(p2.ok) << p2.error;
  ASSERT_TRUE(p3.ok) << p3.error;
  EXPECT_EQ(p1.latency, p2.latency);
  EXPECT_EQ(p1.sim_events, p2.sim_events);
  EXPECT_EQ(p1.latency, p3.latency);
  EXPECT_EQ(p1.sim_events, p3.sim_events);
}

}  // namespace
}  // namespace adc
