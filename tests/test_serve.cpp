// The serving layer: wire framing (truncated prefixes, oversized frames,
// partial reads), the bounded multi-class job queue, JSON value
// round-tripping, and the daemon end-to-end over real Unix-domain and TCP
// sockets — submit/result, concurrent clients sharing one cache,
// restart-warm over a persistent cache directory, backpressure, cancel
// and both shutdown modes.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <map>
#include <mutex>
#include <set>

#include "obs/access_log.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "runtime/fault.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "trace/flush.hpp"

using namespace adc;
using namespace adc::serve;

namespace {

std::string test_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/adc_test_serve_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

std::string test_cache_dir() {
  static std::atomic<int> counter{0};
  std::string dir = "/tmp/adc_test_serve_cache_" +
                    std::to_string(::getpid()) + "_" +
                    std::to_string(counter++);
  std::string cmd = "rm -rf " + dir;
  [[maybe_unused]] int rc = std::system(cmd.c_str());
  return dir;
}

ServerOptions unix_options(std::size_t workers = 2,
                           std::size_t queue_capacity = 64) {
  ServerOptions o;
  o.unix_socket = test_socket_path();
  o.workers = workers;
  o.queue_capacity = queue_capacity;
  o.pool_threads = 2;
  return o;
}

std::string submit_payload(const std::string& script, bool simulate = false,
                           const std::string& priority = "") {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "submit");
  w.kv("bench", "diffeq");
  w.kv("script", script);
  w.kv("simulate", simulate);
  if (!priority.empty()) w.kv("priority", priority);
  w.end_object();
  return w.str();
}

std::string member_string(const JsonValue& v, const char* key) {
  const JsonValue* m = v.find(key);
  return m && m->is_string() ? m->string : std::string();
}

bool reply_ok(const JsonValue& v) {
  const JsonValue* ok = v.find("ok");
  return ok && ok->is_bool() && ok->boolean;
}

// --- protocol framing -------------------------------------------------------

TEST(ServeProtocol, EncodeDecodeRoundTrip) {
  std::string frame = encode_frame("{\"op\":\"ping\"}", kDefaultMaxFrameBytes);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + 13u);

  FrameReader reader(kDefaultMaxFrameBytes);
  reader.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
  EXPECT_FALSE(reader.next(payload));  // drained
}

TEST(ServeProtocol, TruncatedLengthPrefixIsIncomplete) {
  std::string frame = encode_frame("abcd", kDefaultMaxFrameBytes);
  FrameReader reader(kDefaultMaxFrameBytes);
  // Only 3 of the 4 header bytes: not decodable yet, not an error.
  reader.feed(frame.data(), 3);
  std::string payload;
  EXPECT_FALSE(reader.next(payload));
  EXPECT_FALSE(reader.poisoned());
  reader.feed(frame.data() + 3, frame.size() - 3);
  EXPECT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, "abcd");
}

TEST(ServeProtocol, PartialReadsByteAtATime) {
  const std::string doc = "{\"op\":\"stats\",\"pad\":\"xyzzy\"}";
  std::string frame = encode_frame(doc, kDefaultMaxFrameBytes);
  FrameReader reader(kDefaultMaxFrameBytes);
  std::string payload;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.next(payload)) << "complete after byte " << i;
  }
  reader.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, doc);
}

TEST(ServeProtocol, MultipleFramesInOneFeed) {
  std::string stream = encode_frame("one", kDefaultMaxFrameBytes) +
                       encode_frame("two", kDefaultMaxFrameBytes) +
                       encode_frame("three", kDefaultMaxFrameBytes);
  FrameReader reader(kDefaultMaxFrameBytes);
  reader.feed(stream.data(), stream.size());
  std::string payload;
  ASSERT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, "one");
  ASSERT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, "two");
  ASSERT_TRUE(reader.next(payload));
  EXPECT_EQ(payload, "three");
  EXPECT_FALSE(reader.next(payload));
}

TEST(ServeProtocol, OversizedDeclaredLengthPoisonsReader) {
  FrameReader reader(64);
  // Header declaring a 1 MiB payload against a 64-byte limit.
  unsigned char header[4] = {0x00, 0x00, 0x10, 0x00};  // 1048576 LE
  reader.feed(reinterpret_cast<const char*>(header), 4);
  std::string payload;
  EXPECT_THROW(reader.next(payload), FrameError);
  EXPECT_TRUE(reader.poisoned());
  // A poisoned reader stays poisoned: there is no frame boundary left.
  reader.feed("x", 1);
  EXPECT_THROW(reader.next(payload), FrameError);
}

TEST(ServeProtocol, EncodeRejectsOversizedPayload) {
  EXPECT_THROW(encode_frame(std::string(128, 'x'), 64), FrameError);
}

TEST(ServeProtocol, PriorityParsing) {
  Priority p;
  EXPECT_TRUE(parse_priority("high", &p));
  EXPECT_EQ(p, Priority::kHigh);
  EXPECT_TRUE(parse_priority("normal", &p));
  EXPECT_EQ(p, Priority::kNormal);
  EXPECT_TRUE(parse_priority("low", &p));
  EXPECT_EQ(p, Priority::kLow);
  EXPECT_TRUE(parse_priority("", &p));  // default
  EXPECT_EQ(p, Priority::kNormal);
  EXPECT_FALSE(parse_priority("urgent", &p));
  EXPECT_STREQ(to_string(Priority::kHigh), "high");
}

TEST(ServeProtocol, ErrorReplyShape) {
  JsonValue v = parse_json(error_reply("submit", "busy", "queue full", 125));
  EXPECT_FALSE(reply_ok(v));
  EXPECT_EQ(member_string(v, "op"), "submit");
  EXPECT_EQ(member_string(v, "code"), "busy");
  EXPECT_EQ(member_string(v, "error"), "queue full");
  ASSERT_NE(v.find("retry_after_ms"), nullptr);
  EXPECT_EQ(static_cast<int>(v.find("retry_after_ms")->number), 125);
  // Without a hint the member is omitted entirely.
  JsonValue bare = parse_json(error_reply("x", "bad_request", "no"));
  EXPECT_EQ(bare.find("retry_after_ms"), nullptr);
}

// --- job queue --------------------------------------------------------------

TEST(JobQueueTest, PriorityClassesBeatFifo) {
  JobQueue q(16);
  EXPECT_EQ(q.push(1, Priority::kLow), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(2, Priority::kNormal), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(3, Priority::kHigh), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(4, Priority::kHigh), JobQueue::PushResult::kAccepted);
  std::uint64_t id = 0;
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 3u);  // high first, FIFO within the class
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 4u);
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 2u);
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 1u);
}

TEST(JobQueueTest, BoundedCapacityRejects) {
  JobQueue q(2);
  EXPECT_EQ(q.push(1, Priority::kNormal), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(2, Priority::kNormal), JobQueue::PushResult::kAccepted);
  EXPECT_EQ(q.push(3, Priority::kHigh), JobQueue::PushResult::kFull);
  EXPECT_EQ(q.stats().rejected_full, 1u);
  std::uint64_t id;
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(q.push(3, Priority::kHigh), JobQueue::PushResult::kAccepted);
}

TEST(JobQueueTest, CloseDrainsThenStops) {
  JobQueue q(8);
  q.push(1, Priority::kNormal);
  q.push(2, Priority::kNormal);
  q.close();
  EXPECT_EQ(q.push(3, Priority::kNormal), JobQueue::PushResult::kClosed);
  std::uint64_t id;
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 1u);
  ASSERT_TRUE(q.pop(&id));
  EXPECT_EQ(id, 2u);
  EXPECT_FALSE(q.pop(&id));  // closed + drained: no block, no value
}

TEST(JobQueueTest, CloseWakesBlockedPopper) {
  JobQueue q(8);
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    std::uint64_t id;
    EXPECT_FALSE(q.pop(&id));
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);
  q.close();
  popper.join();
  EXPECT_TRUE(returned);
}

TEST(JobQueueTest, RemoveAndPosition) {
  JobQueue q(8);
  q.push(1, Priority::kNormal);
  q.push(2, Priority::kNormal);
  q.push(3, Priority::kHigh);
  // Cross-class dequeue order: 3 (high), then 1, then 2.
  EXPECT_EQ(q.position(3), 0u);
  EXPECT_EQ(q.position(1), 1u);
  EXPECT_EQ(q.position(2), 2u);
  EXPECT_EQ(q.position(99), static_cast<std::size_t>(-1));
  EXPECT_TRUE(q.remove(1));
  EXPECT_FALSE(q.remove(1));
  EXPECT_EQ(q.position(2), 1u);
  EXPECT_EQ(q.depth(), 2u);
}

// --- JSON value round-trip --------------------------------------------------

TEST(JsonRoundTrip, WriteJsonValuePreservesStructure) {
  const std::string doc =
      "{\"int\":42,\"neg\":-7,\"float\":1.5,\"s\":\"a\\\"b\\\\c\",\"t\":true,"
      "\"n\":null,\"arr\":[1,2,[3]],\"obj\":{\"k\":\"v\"}}";
  JsonValue parsed = parse_json(doc);
  std::string round = to_json(parsed);
  // Integral numbers must come back integral, not as 42.000000.
  EXPECT_NE(round.find("\"int\":42"), std::string::npos) << round;
  EXPECT_NE(round.find("\"neg\":-7"), std::string::npos) << round;
  // And a second parse must agree exactly.
  EXPECT_EQ(to_json(parse_json(round)), round);
}

// --- server integration -----------------------------------------------------

TEST(ServeServer, SubmitAndResultOverUnixSocket) {
  ServeServer server(unix_options());
  server.start();

  ServeClient client = ServeClient::connect_unix(server.unix_path());
  std::uint64_t id = client.submit(submit_payload("gt1; gt2; lt"));
  JsonValue point = client.wait_result(id);
  EXPECT_EQ(member_string(point, "status"), "ok");
  ASSERT_NE(point.find("literals"), nullptr);
  EXPECT_GT(point.find("literals")->number, 0.0);

  JsonValue stats = client.request("{\"op\":\"stats\"}");
  ASSERT_TRUE(reply_ok(stats));
  EXPECT_EQ(member_string(stats, "state"), "serving");
  ASSERT_NE(stats.find("jobs"), nullptr);
  EXPECT_EQ(static_cast<int>(stats.find("jobs")->at("completed").number), 1);

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

TEST(ServeServer, PingOverTcp) {
  ServerOptions o;
  o.port = 0;  // ephemeral
  o.workers = 1;
  ServeServer server(o);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  ServeClient client = ServeClient::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_TRUE(reply_ok(client.request("{\"op\":\"ping\"}")));
  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

TEST(ServeServer, MalformedJsonGetsErrorReplyAndConnectionSurvives) {
  ServeServer server(unix_options());
  server.start();
  ServeClient client = ServeClient::connect_unix(server.unix_path());

  JsonValue err = client.request("this is not json {");
  EXPECT_FALSE(reply_ok(err));
  EXPECT_EQ(member_string(err, "code"), "bad_request");
  // The connection is still usable for a well-formed request.
  EXPECT_TRUE(reply_ok(client.request("{\"op\":\"ping\"}")));

  JsonValue unknown = client.request("{\"op\":\"frobnicate\"}");
  EXPECT_FALSE(reply_ok(unknown));
  EXPECT_EQ(member_string(unknown, "code"), "bad_request");

  JsonValue noop = client.request("[1,2,3]");
  EXPECT_FALSE(reply_ok(noop));
  EXPECT_EQ(member_string(noop, "code"), "bad_request");

  server.request_shutdown(true);
  server.wait();
  EXPECT_GE(server.stats().bad_requests, 3u);
}

TEST(ServeServer, BadSubmitsAreRejectedStructurally) {
  ServeServer server(unix_options());
  server.start();
  ServeClient client = ServeClient::connect_unix(server.unix_path());

  JsonValue bad_bench =
      client.request("{\"op\":\"submit\",\"bench\":\"nonesuch\"}");
  EXPECT_EQ(member_string(bad_bench, "code"), "bad_request");

  JsonValue bad_script = client.request(
      "{\"op\":\"submit\",\"bench\":\"diffeq\",\"script\":\"gt99\"}");
  EXPECT_EQ(member_string(bad_script, "code"), "bad_request");

  JsonValue bad_prio = client.request(
      "{\"op\":\"submit\",\"bench\":\"diffeq\",\"priority\":\"urgent\"}");
  EXPECT_EQ(member_string(bad_prio, "code"), "bad_request");

  JsonValue not_found = client.request("{\"op\":\"status\",\"id\":999}");
  EXPECT_EQ(member_string(not_found, "code"), "not_found");

  server.request_shutdown(true);
  server.wait();
}

TEST(ServeServer, OversizedFrameRepliesThenDropsConnection) {
  ServerOptions o = unix_options();
  o.max_frame_bytes = 256;
  ServeServer server(o);
  server.start();

  ServeClient client = ServeClient::connect_unix(server.unix_path());
  // A frame whose *declared* length exceeds the server's limit: the server
  // replies too_large, then hangs up (the stream cannot be resynced).
  EXPECT_THROW(
      {
        JsonValue first = client.request(std::string(512, ' '));
        // If the reply arrived before the hangup, it must be the too_large
        // error and the *next* request must fail on the dropped connection.
        EXPECT_EQ(member_string(first, "code"), "too_large");
        client.request("{\"op\":\"ping\"}");
      },
      std::runtime_error);

  server.request_shutdown(true);
  server.wait();
}

TEST(ServeServer, TwoConcurrentClientsShareOneCache) {
  ServeServer server(unix_options(/*workers=*/2));
  server.start();

  const std::vector<std::string> grid = {
      "lt", "gt1; lt", "gt1; gt2; lt", "gt1; gt2; gt3; lt",
      "gt1; gt2; gt3; gt4; lt"};
  auto drive = [&](std::size_t* ok_count) {
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    std::vector<std::uint64_t> ids;
    for (const auto& s : grid) ids.push_back(cl.submit(submit_payload(s)));
    for (auto id : ids)
      if (member_string(cl.wait_result(id), "status") == "ok") ++*ok_count;
  };
  std::size_t ok_a = 0, ok_b = 0;
  std::thread a(drive, &ok_a), b(drive, &ok_b);
  a.join();
  b.join();
  EXPECT_EQ(ok_a, grid.size());
  EXPECT_EQ(ok_b, grid.size());

  // Overlapping recipes through one executor: the stage cache must have
  // served repeats (hits or joins), not recomputed all 10 jobs.
  CacheStats cs = server.executor().cache().stats();
  EXPECT_GT(cs.hits + cs.joins, 0u);

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

TEST(ServeServer, RestartReplaysWarmFromSharedCacheDir) {
  std::string cache_dir = test_cache_dir();
  const std::vector<std::string> grid = {"lt", "gt1; lt", "gt1; gt2; lt"};

  {
    ServerOptions o = unix_options();
    o.flow.disk_cache_dir = cache_dir;
    ServeServer server(o);
    server.start();
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    for (const auto& s : grid) {
      JsonValue p = cl.wait_result(cl.submit(submit_payload(s)));
      EXPECT_EQ(member_string(p, "status"), "ok");
      const JsonValue* disk = p.find("from_disk_cache");
      EXPECT_TRUE(!disk || !disk->boolean) << "cold run claimed a disk hit";
    }
    server.request_shutdown(true);
    ASSERT_EQ(server.wait(), 0);
  }

  // A fresh daemon over the same directory starts hot: every point
  // replays from the persistent tier.
  {
    ServerOptions o = unix_options();
    o.flow.disk_cache_dir = cache_dir;
    ServeServer server(o);
    server.start();
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    for (const auto& s : grid) {
      JsonValue p = cl.wait_result(cl.submit(submit_payload(s)));
      EXPECT_EQ(member_string(p, "status"), "ok");
      const JsonValue* disk = p.find("from_disk_cache");
      ASSERT_NE(disk, nullptr) << "warm run missing from_disk_cache";
      EXPECT_TRUE(disk->boolean);
    }
    // The disk tier's counters surface as metrics gauges (sampled at the
    // end of every run).
    EXPECT_GE(server.executor().metrics().gauge("disk.hits").value(),
              static_cast<std::int64_t>(grid.size()));
    EXPECT_EQ(server.executor().metrics().gauge("disk.corrupt").value(), 0);
    server.request_shutdown(true);
    ASSERT_EQ(server.wait(), 0);
  }
}

TEST(ServeServer, BackpressureRejectsWithRetryAfter) {
  fault().reset();
  fault().configure("flow.sim=stall(400):1");

  ServerOptions o = unix_options(/*workers=*/1, /*queue_capacity=*/1);
  ServeServer server(o);
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());

  // Job 1 stalls in the simulator on a worker; wait until it is running
  // so the queue is empty again.
  std::uint64_t id1 = cl.submit(submit_payload("lt", /*simulate=*/true));
  for (int i = 0; i < 200 && server.stats().running == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GT(server.stats().running, 0u);

  // Job 2 fills the single queue slot; job 3 must bounce with a
  // structured busy reply carrying a retry hint — not block, not hang.
  std::uint64_t id2 = cl.submit(submit_payload("gt1; lt"));
  JsonValue rejected = cl.request(submit_payload("gt1; gt2; lt"));
  EXPECT_FALSE(reply_ok(rejected));
  EXPECT_EQ(member_string(rejected, "code"), "busy");
  ASSERT_NE(rejected.find("retry_after_ms"), nullptr);
  EXPECT_GT(rejected.find("retry_after_ms")->number, 0.0);

  // The retrying submit path eventually lands once the stall clears.
  std::uint64_t id3 = cl.submit(submit_payload("gt1; gt2; lt"));
  EXPECT_EQ(member_string(cl.wait_result(id1), "status"), "ok");
  EXPECT_EQ(member_string(cl.wait_result(id2), "status"), "ok");
  EXPECT_EQ(member_string(cl.wait_result(id3), "status"), "ok");
  EXPECT_GE(server.stats().rejected, 1u);

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
  fault().reset();
}

TEST(ServeServer, CancelQueuedJob) {
  fault().reset();
  fault().configure("flow.sim=stall(400):1");

  ServerOptions o = unix_options(/*workers=*/1, /*queue_capacity=*/8);
  ServeServer server(o);
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());

  std::uint64_t id1 = cl.submit(submit_payload("lt", /*simulate=*/true));
  for (int i = 0; i < 200 && server.stats().running == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::uint64_t id2 = cl.submit(submit_payload("gt1; lt"));

  JsonWriter w;
  w.begin_object();
  w.kv("op", "cancel");
  w.kv("id", id2);
  w.end_object();
  JsonValue reply = cl.request(w.str());
  ASSERT_TRUE(reply_ok(reply));
  EXPECT_EQ(member_string(reply, "outcome"), "dequeued");

  EXPECT_EQ(member_string(cl.wait_result(id2), "status"), "cancelled");
  EXPECT_EQ(member_string(cl.wait_result(id1), "status"), "ok");

  server.request_shutdown(true);
  server.wait();
  fault().reset();
}

TEST(ServeServer, CancellingShutdownAbortsQueuedJobs) {
  fault().reset();
  fault().configure("flow.sim=stall(300):1");

  ServerOptions o = unix_options(/*workers=*/1, /*queue_capacity=*/8);
  ServeServer server(o);
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());

  cl.submit(submit_payload("lt", /*simulate=*/true));
  for (int i = 0; i < 200 && server.stats().running == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::uint64_t queued = cl.submit(submit_payload("gt1; lt"));

  server.request_shutdown(false);
  EXPECT_EQ(server.wait(), 5);  // cancel-mode shutdown aborted work
  ServerStats s = server.stats();
  EXPECT_GE(s.cancelled, 1u);
  // The queued job's terminal state is visible in the registry.
  (void)queued;
  fault().reset();
}

TEST(ServeServer, SubmitAfterShutdownIsRejected) {
  ServeServer server(unix_options());
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());
  // Round-trip once so the connection is accepted (not just backlogged)
  // before the shutdown request races the accept loop.
  ASSERT_TRUE(reply_ok(cl.request("{\"op\":\"ping\"}")));
  server.request_shutdown(true);
  JsonValue reply = cl.request(submit_payload("lt"));
  EXPECT_FALSE(reply_ok(reply));
  EXPECT_EQ(member_string(reply, "code"), "shutting_down");
  server.wait();
}

// --- request-scoped observability -------------------------------------------

JsonValue fetch_trace(ServeClient& cl, std::uint64_t id) {
  JsonWriter w;
  w.begin_object();
  w.kv("op", "trace");
  w.kv("id", id);
  w.end_object();
  return cl.request(w.str());
}

// Indexes a `trace` reply's complete ("X") events by span id and checks
// the tree invariants every consumer relies on: a single root named
// "job", every parent id resolving, one trace id throughout.
struct SpanTree {
  // Owns the reply: by_id/root point into it, and call sites pass
  // fetch_trace(...) temporaries directly.
  JsonValue doc;
  std::map<std::uint64_t, const JsonValue*> by_id;
  const JsonValue* root = nullptr;
  std::string trace_id;

  explicit SpanTree(JsonValue trace_reply) : doc(std::move(trace_reply)) {
    const JsonValue* trace = doc.find("trace");
    if (!trace) return;
    const JsonValue* events = trace->find("traceEvents");
    if (!events || !events->is_array()) return;
    for (const JsonValue& e : events->array) {
      if (e.at("ph").string != "X") continue;
      const JsonValue& args = e.at("args");
      by_id[static_cast<std::uint64_t>(args.at("span_id").number)] = &e;
      if (args.at("parent_span_id").number == 0) root = &e;
      if (trace_id.empty()) trace_id = args.at("trace_id").string;
      EXPECT_EQ(args.at("trace_id").string, trace_id)
          << "mixed trace ids in one job trace";
    }
  }

  const JsonValue* find(const std::string& name) const {
    for (const auto& [id, e] : by_id)
      if (e->at("name").string == name) return e;
    return nullptr;
  }

  void expect_connected() const {
    ASSERT_NE(root, nullptr) << "no root span";
    EXPECT_EQ(root->at("name").string, "job");
    for (const auto& [id, e] : by_id) {
      std::uint64_t parent = static_cast<std::uint64_t>(
          e->at("args").at("parent_span_id").number);
      EXPECT_TRUE(parent == 0 || by_id.count(parent))
          << "span " << e->at("name").string << " dangles under " << parent;
    }
  }
};

TEST(ServeObservability, TraceTreeCoversClientObservedLatency) {
  fault().reset();
  // Pin the job's service time at >=200ms so the <=5% overhead budget of
  // the coverage assertion dwarfs socket round-trips.
  fault().configure("flow.sim=stall(200):1");
  ServeServer server(unix_options());
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());

  const auto t0 = std::chrono::steady_clock::now();
  JsonValue accepted = cl.request(submit_payload("lt", /*simulate=*/true));
  ASSERT_TRUE(reply_ok(accepted));
  const std::uint64_t id =
      static_cast<std::uint64_t>(accepted.find("id")->number);
  // The submit reply echoes the freshly minted trace id.
  const std::string trace_id = member_string(accepted, "trace_id");
  ASSERT_EQ(trace_id.size(), 16u);
  EXPECT_EQ(member_string(cl.wait_result(id), "status"), "ok");
  const auto client_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  JsonValue reply = fetch_trace(cl, id);
  ASSERT_TRUE(reply_ok(reply));
  EXPECT_EQ(member_string(reply, "trace_id"), trace_id);
  SpanTree tree(reply);
  tree.expect_connected();
  EXPECT_EQ(tree.trace_id, trace_id);

  // Queue wait and execution hang directly under the root; the executor
  // stages hang under flow.run.
  const JsonValue* queue_span = tree.find("queue.wait");
  const JsonValue* run_span = tree.find("flow.run");
  ASSERT_NE(queue_span, nullptr);
  ASSERT_NE(run_span, nullptr);
  const std::uint64_t root_id =
      static_cast<std::uint64_t>(tree.root->at("args").at("span_id").number);
  EXPECT_EQ(queue_span->at("args").at("parent_span_id").number, root_id);
  EXPECT_EQ(run_span->at("args").at("parent_span_id").number, root_id);
  ASSERT_NE(tree.find("sim"), nullptr) << "stage spans missing";

  // The acceptance bar: the root span accounts for >=95% of what the
  // client measured around submit + wait_result.
  EXPECT_GE(tree.root->at("dur").number, 0.95 * client_us)
      << "root span " << tree.root->at("dur").number << "us vs client "
      << client_us << "us";

  // Status/result echo the trace id too.
  JsonWriter w;
  w.begin_object();
  w.kv("op", "status");
  w.kv("id", id);
  w.end_object();
  EXPECT_EQ(member_string(cl.request(w.str()), "trace_id"), trace_id);

  // Unknown ids stay a structured error.
  EXPECT_EQ(member_string(fetch_trace(cl, 999), "code"), "not_found");

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
  fault().reset();
}

TEST(ServeObservability, WarmDiskReplayIsTraced) {
  std::string cache_dir = test_cache_dir();
  {
    ServerOptions o = unix_options();
    o.flow.disk_cache_dir = cache_dir;
    ServeServer server(o);
    server.start();
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    EXPECT_EQ(member_string(cl.wait_result(cl.submit(submit_payload("gt1; lt"))),
                            "status"),
              "ok");
    server.request_shutdown(true);
    ASSERT_EQ(server.wait(), 0);
  }
  {
    ServerOptions o = unix_options();
    o.flow.disk_cache_dir = cache_dir;
    ServeServer server(o);
    server.start();
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    std::uint64_t id = cl.submit(submit_payload("gt1; lt"));
    JsonValue point = cl.wait_result(id);
    ASSERT_NE(point.find("from_disk_cache"), nullptr);
    ASSERT_TRUE(point.find("from_disk_cache")->boolean);

    // The replayed job still yields a full tree — with the disk tier's
    // probe and replay as spans instead of the synthesis stages.
    SpanTree tree(fetch_trace(cl, id));
    tree.expect_connected();
    ASSERT_NE(tree.find("disk.probe"), nullptr);
    ASSERT_NE(tree.find("disk.replay"), nullptr);
    EXPECT_EQ(tree.find("frontend"), nullptr)
        << "disk replay should skip synthesis stages";
    server.request_shutdown(true);
    ASSERT_EQ(server.wait(), 0);
  }
}

TEST(ServeObservability, ConcurrentClientsGetDistinctConnectedTrees) {
  ServeServer server(unix_options(/*workers=*/2));
  server.start();

  const std::vector<std::string> scripts = {"lt", "gt1; lt", "gt1; gt2; lt"};
  std::mutex mu;
  std::set<std::string> trace_ids;
  auto drive = [&] {
    ServeClient cl = ServeClient::connect_unix(server.unix_path());
    std::vector<std::uint64_t> ids;
    for (const auto& s : scripts) ids.push_back(cl.submit(submit_payload(s)));
    for (auto id : ids) {
      EXPECT_EQ(member_string(cl.wait_result(id), "status"), "ok");
      SpanTree tree(fetch_trace(cl, id));
      tree.expect_connected();
      ASSERT_FALSE(tree.trace_id.empty());
      std::lock_guard<std::mutex> lock(mu);
      trace_ids.insert(tree.trace_id);
    }
  };
  std::thread a(drive), b(drive);
  a.join();
  b.join();
  // Six jobs, six trees: no id collisions, no cross-contamination.
  EXPECT_EQ(trace_ids.size(), 2 * scripts.size());

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

// Locates one series in the `metrics` op's obs arrays.
const JsonValue* metrics_series(const JsonValue& reply, const char* kind,
                                const std::string& name,
                                const std::string& cls = "") {
  const JsonValue* obs = reply.find("obs");
  const JsonValue* arr = obs ? obs->find(kind) : nullptr;
  if (!arr || !arr->is_array()) return nullptr;
  for (const JsonValue& s : arr->array) {
    if (s.at("name").string != name) continue;
    if (cls.empty()) return &s;
    const JsonValue* labels = s.find("labels");
    const JsonValue* v = labels ? labels->find("class") : nullptr;
    if (v && v->string == cls) return &s;
  }
  return nullptr;
}

TEST(ServeObservability, MetricsOpReportsLabeledSeries) {
  ServeServer server(unix_options());
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());
  EXPECT_EQ(
      member_string(cl.wait_result(cl.submit(submit_payload(
                        "lt", /*simulate=*/false, /*priority=*/"high"))),
                    "status"),
      "ok");

  JsonValue m = cl.request("{\"op\":\"metrics\"}");
  ASSERT_TRUE(reply_ok(m));
  EXPECT_EQ(m.find("jobs")->at("completed").number, 1);

  const JsonValue* sub = metrics_series(m, "counters", "serve.submissions",
                                        "high");
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->at("value").number, 1);
  // The unused classes exist too (pre-registered, reading zero) so the
  // exposed family set never depends on traffic.
  ASSERT_NE(metrics_series(m, "counters", "serve.submissions", "low"),
            nullptr);

  const JsonValue* svc = metrics_series(m, "histograms", "serve.service_us",
                                        "high");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->at("count").number, 1);
  EXPECT_GT(svc->at("window_p95_us").number, 0.0);

  const JsonValue* wait = metrics_series(m, "histograms",
                                         "serve.queue.wait_us", "high");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->at("count").number, 1);

  // In-flight count: the job already completed, so it reads zero again.
  const JsonValue* running = metrics_series(m, "gauges", "serve.running");
  ASSERT_NE(running, nullptr);
  EXPECT_EQ(running->at("value").number, 0);
  const JsonValue* conns = metrics_series(m, "gauges", "serve.connections");
  ASSERT_NE(conns, nullptr);
  EXPECT_GE(conns->at("value").number, 1.0);
  // The backpressure hint rides along as a gauge (satellite: EWMA).
  ASSERT_NE(metrics_series(m, "gauges", "serve.retry_after_ms"), nullptr);

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

TEST(ServeObservability, MetricsHttpEndpointServesValidPrometheus) {
  ServerOptions o = unix_options();
  o.metrics_port = 0;  // ephemeral loopback
  ServeServer server(o);
  server.start();
  ASSERT_GT(server.metrics_http_port(), 0);

  ServeClient cl = ServeClient::connect_unix(server.unix_path());
  EXPECT_EQ(member_string(cl.wait_result(cl.submit(submit_payload("lt"))),
                          "status"),
            "ok");
  // `metrics` refreshes the sampled gauges synchronously, so the scrape
  // right after sees current values rather than the sampler's last tick.
  ASSERT_TRUE(reply_ok(cl.request("{\"op\":\"metrics\"}")));

  int status = 0;
  std::string body, error;
  ASSERT_TRUE(obs::http_get("127.0.0.1",
                            static_cast<std::uint16_t>(
                                server.metrics_http_port()),
                            "/metrics", 3000, &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(obs::validate_prometheus_text(body), std::vector<std::string>{});
  EXPECT_NE(body.find("adc_serve_completions_total{class=\"normal\"} 1"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE adc_serve_queue_wait_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("adc_serve_service_us_window{class=\"normal\","
                      "quantile=\"0.95\"}"),
            std::string::npos);

  ASSERT_TRUE(obs::http_get("127.0.0.1",
                            static_cast<std::uint16_t>(
                                server.metrics_http_port()),
                            "/jobs", 3000, &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);
}

TEST(ServeObservability, AccessLogRecordsDoneRejectedCancelledAndBusyClass) {
  fault().reset();
  fault().configure("flow.sim=stall(400):1");

  ServerOptions o = unix_options(/*workers=*/1, /*queue_capacity=*/1);
  o.access_log = "/tmp/adc_test_serve_access_" + std::to_string(::getpid()) +
                 ".jsonl";
  std::remove(o.access_log.c_str());
  const std::string log_path = o.access_log;
  ServeServer server(o);
  server.start();
  ServeClient cl = ServeClient::connect_unix(server.unix_path());

  // Stall one job on the worker, fill the queue, then bounce a third.
  std::uint64_t id1 = cl.submit(submit_payload("lt", /*simulate=*/true));
  for (int i = 0; i < 200 && server.stats().running == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  std::uint64_t id2 = cl.submit(submit_payload("gt1; lt"));
  JsonValue rejected = cl.request(submit_payload("gt1; gt2; lt"));
  EXPECT_EQ(member_string(rejected, "code"), "busy");
  // Satellite: the busy reply names the class it rejected.
  EXPECT_EQ(member_string(rejected, "class"), "normal");
  ASSERT_NE(rejected.find("retry_after_ms"), nullptr);

  // Cancel the queued job, let the stalled one finish.
  JsonWriter w;
  w.begin_object();
  w.kv("op", "cancel");
  w.kv("id", id2);
  w.end_object();
  ASSERT_TRUE(reply_ok(cl.request(w.str())));
  EXPECT_EQ(member_string(cl.wait_result(id1), "status"), "ok");

  server.request_shutdown(true);
  EXPECT_EQ(server.wait(), 0);

  // The log validates and carries one line per terminal event.
  std::uint64_t lines = 0;
  EXPECT_EQ(obs::AccessLog::validate(log_path, &lines),
            std::vector<std::string>{});
  EXPECT_EQ(lines, 3u);
  std::ifstream in(log_path);
  std::map<std::string, std::string> by_event;
  std::string line;
  while (std::getline(in, line)) {
    JsonValue v = parse_json(line);
    by_event[v.at("event").string] = line;
    EXPECT_EQ(v.at("bench").string, "diffeq");
  }
  ASSERT_EQ(by_event.count("done"), 1u);
  ASSERT_EQ(by_event.count("rejected"), 1u);
  ASSERT_EQ(by_event.count("cancelled"), 1u);
  JsonValue done = parse_json(by_event["done"]);
  EXPECT_EQ(done.at("trace_id").string.size(), 16u);
  EXPECT_GT(done.at("service_us").number, 0.0);
  EXPECT_GT(done.at("result_bytes").number, 0.0);
  JsonValue rej = parse_json(by_event["rejected"]);
  EXPECT_EQ(rej.at("status").string, "busy");
  EXPECT_GT(rej.at("retry_after_ms").number, 0.0);
  std::remove(log_path.c_str());
  fault().reset();
}

// --- signal drain hook (satellite: SIGTERM artifact safety) -----------------

std::atomic<int> g_drain_signal{0};

void record_drain(int sig) { g_drain_signal = sig; }

TEST(FlushDrainHook, FirstSignalDrainsInsteadOfKilling) {
  g_drain_signal = 0;
  set_signal_drain_hook(record_drain);
  std::raise(SIGTERM);
  // Still alive: the hook intercepted the signal instead of re-raising.
  EXPECT_EQ(g_drain_signal.load(), SIGTERM);
  // One-shot: the hook consumed itself; re-arm and verify it fires again,
  // then clear so later tests see the default flush+re-raise behavior.
  g_drain_signal = 0;
  set_signal_drain_hook(record_drain);
  std::raise(SIGTERM);
  EXPECT_EQ(g_drain_signal.load(), SIGTERM);
  set_signal_drain_hook(nullptr);
}

}  // namespace
