// Provenance tests: the per-run decision log must reconcile exactly — every
// stage's decision records sum to its counters, the arc ledger explains the
// before/after graph, and the channel ledger explains the Figure-12 channel
// column the end-to-end tests assert (DIFFEQ: 5 controller channels).

#include "trace/provenance.hpp"

#include <gtest/gtest.h>

#include "report/json_parse.hpp"
#include "runtime/flow.hpp"

namespace adc {
namespace {

// --- unit: records and reconciliation -------------------------------------

TEST(Provenance, RecordChainersAccumulate) {
  ProvenanceRecord r("gt2", "dominated_arc_removed");
  r.removed().field("src", "n1").field("dst", std::int64_t{7});
  EXPECT_EQ(r.arcs_removed, 1);
  EXPECT_EQ(r.key(), "gt2.dominated_arc_removed");
  ASSERT_EQ(r.fields.size(), 2u);
  EXPECT_EQ(r.fields[1].second, "7");
}

TEST(Provenance, ReconcileFlagsUnaccountedCounters) {
  ProvenanceReport rep;
  rep.arcs_initial = 10;
  rep.arcs_final = 9;
  ProvenanceStage s;
  s.name = "GT2";
  s.arcs_removed = 1;  // counter says 1, but no decision carries the delta
  rep.global_stages.push_back(s);
  auto errs = rep.reconcile();
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NE(errs[0].find("GT2"), std::string::npos);

  rep.global_stages[0].decisions.push_back(
      ProvenanceRecord("gt2", "dominated_arc_removed").removed());
  EXPECT_TRUE(rep.reconcile().empty());
}

TEST(Provenance, ReconcileFlagsBrokenLedgers) {
  ProvenanceReport rep;
  rep.arcs_initial = 10;
  rep.arcs_final = 10;  // nothing removed, yet final != initial - 2
  ProvenanceStage s;
  s.arcs_removed = 2;
  s.decisions.push_back(ProvenanceRecord("gt2", "x").removed(2));
  rep.global_stages.push_back(s);
  rep.channels_unoptimized = 8;
  rep.channels_final = 5;  // no merges recorded -> ledger off by 3
  auto errs = rep.reconcile();
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_NE(errs[0].find("arc ledger"), std::string::npos);
  EXPECT_NE(errs[1].find("channel ledger"), std::string::npos);
}

// --- the full flow reconciles ---------------------------------------------

FlowPoint provenance_point(const std::string& bench, const std::string& script) {
  const BuiltinBenchmark* b = find_builtin(bench);
  FlowRequest req = make_builtin_request(*b, script);
  req.provenance = true;
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(req);
  EXPECT_TRUE(p.ok) << p.error;
  return p;
}

TEST(Provenance, DiffeqFullRecipeReconcilesWithFigure12) {
  FlowPoint p = provenance_point("diffeq", "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  ASSERT_TRUE(p.provenance);
  const ProvenanceReport& rep = *p.provenance;
  EXPECT_EQ(rep.reconcile(), std::vector<std::string>{}) << rep.summary();

  // Figure-12 channel column (the delta test_end_to_end asserts): the full
  // recipe leaves DIFFEQ with 5 controller channels.
  EXPECT_EQ(rep.channels_final, 5u);
  EXPECT_EQ(p.channels, 5u);
  EXPECT_EQ(static_cast<long long>(rep.channels_unoptimized) -
                rep.total_channels_merged(),
            static_cast<long long>(rep.channels_final));
  EXPECT_GT(rep.total_channels_merged(), 0);

  // Arc ledger against the actual graphs.
  EXPECT_EQ(static_cast<long long>(rep.arcs_initial) - rep.total_arcs_removed() +
                rep.total_arcs_added(),
            static_cast<long long>(rep.arcs_final));
  EXPECT_LT(rep.arcs_final, rep.arcs_initial);

  // Controller sizes straddle the local transforms and match the flow's own
  // metrics (paper row 3: 28 states across 4 machines).
  EXPECT_EQ(rep.total_states_final(), p.states);
  EXPECT_EQ(rep.total_transitions_final(), p.transitions);
  EXPECT_LE(rep.total_states_final(), 30u);

  // The decision log names the passes that did the work.
  auto counts = rep.decision_counts();
  EXPECT_GT(counts["gt2.dominated_arc_removed"], 0u);
  std::size_t lt_decisions = 0;
  for (const auto& [key, n] : counts)
    if (key.rfind("lt", 0) == 0) lt_decisions += n;
  EXPECT_GT(lt_decisions, 0u) << "local transforms left no decision records";
}

TEST(Provenance, EveryGridPointReconciles) {
  // The whole GT ablation grid must balance, not just the paper's recipe —
  // including scripts with no gt5 (plan derived fresh) and no gt at all.
  const BuiltinBenchmark* b = find_builtin("mac_reduce");
  FlowExecutor exec(nullptr);
  for (const auto& script : gt_ablation_grid(true)) {
    FlowRequest req = make_builtin_request(*b, script);
    req.provenance = true;
    req.simulate = false;
    FlowPoint p = exec.run(req);
    ASSERT_TRUE(p.ok) << script << ": " << p.error;
    ASSERT_TRUE(p.provenance) << script;
    EXPECT_EQ(p.provenance->reconcile(), std::vector<std::string>{})
        << script << "\n"
        << p.provenance->summary();
  }
}

TEST(Provenance, StageCountersMatchDecisionSums) {
  FlowPoint p = provenance_point("gcd", "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  for (const auto& s : p.provenance->global_stages) {
    int removed = 0;
    for (const auto& d : s.decisions) removed += d.arcs_removed;
    EXPECT_EQ(removed, s.arcs_removed) << s.name;
  }
}

TEST(Provenance, JsonSerializationParsesAndCarriesTheLedger) {
  FlowPoint p = provenance_point("diffeq", "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  JsonValue doc = parse_json(p.provenance->to_json());
  EXPECT_EQ(doc.at("benchmark").string, "diffeq");
  EXPECT_EQ(static_cast<std::size_t>(doc.at("graph").at("channels_final").number), 5u);
  EXPECT_TRUE(doc.at("stages").is_array());
  EXPECT_FALSE(doc.at("stages").array.empty());
  EXPECT_TRUE(doc.at("reconciliation").array.empty())
      << "serialized report does not reconcile";
  // Stage decision records carry pass/kind plus their counter deltas.
  const JsonValue& first_stage = doc.at("stages").array.front();
  for (const JsonValue& d : first_stage.at("decisions").array) {
    EXPECT_TRUE(d.at("pass").is_string());
    EXPECT_TRUE(d.at("kind").is_string());
  }
}

TEST(Provenance, CachedRerunProducesTheSameReport) {
  // Provenance is rebuilt from cached snapshots: a second run (all stages
  // cache hits) must serialize byte-identically.
  const BuiltinBenchmark* b = find_builtin("diffeq");
  FlowRequest req = make_builtin_request(*b, "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  req.provenance = true;
  FlowExecutor exec(nullptr);
  FlowPoint first = exec.run(req);
  FlowPoint second = exec.run(req);
  ASSERT_TRUE(first.provenance && second.provenance);
  EXPECT_EQ(first.provenance->to_json(), second.provenance->to_json());
  EXPECT_GT(exec.cache().stats().hits, 0u);
}

}  // namespace
}  // namespace adc
