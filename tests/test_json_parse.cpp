// JSON parser error paths.  Every BENCH baseline, Chrome trace and
// provenance log round-trips through report/json_parse.hpp, so malformed
// input must fail loudly (with an offset) instead of yielding a garbage
// document — and hostile nesting must error, not smash the stack.

#include "report/json_parse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

namespace adc {
namespace {

// Expects parse_json to throw, with `what` somewhere in the message.
void expect_error(const std::string& text, const std::string& what) {
  try {
    parse_json(text);
    FAIL() << "expected a parse failure for: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
        << "wrong message for " << text << ": " << e.what();
  }
}

TEST(JsonParse, TruncatedDocumentsFail) {
  expect_error("", "unexpected end of input");
  expect_error("{\"a\": 1", "unexpected end of input");
  expect_error("[1, 2", "unexpected end of input");
  expect_error("{\"a\":", "unexpected end of input");
  expect_error("\"abc", "unterminated string");
  expect_error("\"a\\", "unterminated escape");
  expect_error("\"a\\u00", "truncated \\u escape");
}

TEST(JsonParse, BadEscapesFail) {
  expect_error("\"\\x\"", "bad escape");
  expect_error("\"\\u00gz\"", "bad \\u escape");
  expect_error("\"a\nb\"", "raw control character");
}

TEST(JsonParse, BadLiteralsAndNumbersFail) {
  expect_error("trux", "bad literal");
  expect_error("falsy", "bad literal");
  expect_error("nul", "bad literal");
  expect_error("-", "bad number");
  expect_error("{\"a\" 1}", "expected ':'");
  expect_error("[1 2]", "expected");
}

TEST(JsonParse, TrailingGarbageFails) {
  expect_error("{} extra", "trailing characters");
  expect_error("1 1", "trailing characters");
}

TEST(JsonParse, ErrorsReportTheOffset) {
  try {
    parse_json("[1, 2, trux]");
    FAIL() << "expected a parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("at offset"), std::string::npos);
  }
}

TEST(JsonParse, DuplicateKeysFindFirst) {
  JsonValue v = parse_json("{\"k\": 1, \"k\": 2}");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.object.size(), 2u);  // both members retained...
  const JsonValue* k = v.find("k");
  ASSERT_NE(k, nullptr);
  EXPECT_EQ(k->number, 1.0);  // ...but lookup is find-first
  EXPECT_EQ(v.at("k").number, 1.0);
}

TEST(JsonParse, MissingMemberThrows) {
  JsonValue v = parse_json("{\"a\": 1}");
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_THROW(v.at("b"), std::runtime_error);
}

TEST(JsonParse, DeepNestingWithinTheLimitParses) {
  std::string doc;
  for (int i = 0; i < 150; ++i) doc += '[';
  doc += "0";
  for (int i = 0; i < 150; ++i) doc += ']';
  JsonValue v = parse_json(doc);
  EXPECT_TRUE(v.is_array());
}

TEST(JsonParse, HostileNestingFailsInsteadOfOverflowing) {
  std::string arrays(400, '[');
  expect_error(arrays, "nesting too deep");
  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (int i = 0; i < 200; ++i) mixed += "{\"a\":[";
  expect_error(mixed, "nesting too deep");
}

TEST(JsonParse, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(parse_json("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_json("\"\\u00e9\"").string, "\xc3\xa9");    // 2-byte
  EXPECT_EQ(parse_json("\"\\u20ac\"").string, "\xe2\x82\xac");  // 3-byte
  EXPECT_EQ(parse_json("\"\\\"\\\\\\n\\t\"").string, "\"\\\n\t");
}

TEST(JsonParse, ScalarsRoundTrip) {
  EXPECT_EQ(parse_json("3.5e2").number, 350.0);
  EXPECT_EQ(parse_json("-0.25").number, -0.25);
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_EQ(parse_json("null").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(parse_json("  [ ]  ").array.size(), 0u);
  EXPECT_EQ(parse_json("{ }").object.size(), 0u);
}

TEST(JsonParse, NonFiniteNumbersSerializeAsNull) {
  // NaN/Inf have no JSON rendering (an attribution ratio can divide by
  // zero); write_json_value must normalize them to null so the emitted
  // document stays parseable instead of containing "nan"/"inf" tokens.
  JsonValue v;
  v.kind = JsonValue::Kind::kNumber;
  for (double x : {std::nan(""), HUGE_VAL, -HUGE_VAL}) {
    v.number = x;
    EXPECT_EQ(to_json(v), "null");
  }
  JsonValue obj;
  obj.kind = JsonValue::Kind::kObject;
  v.number = std::nan("");
  obj.object.emplace_back("ratio", v);
  v.number = 2.0;
  obj.object.emplace_back("fine", v);
  JsonValue back = parse_json(to_json(obj));
  EXPECT_EQ(back.at("ratio").kind, JsonValue::Kind::kNull);
  EXPECT_EQ(back.at("fine").number, 2.0);
}

}  // namespace
}  // namespace adc
