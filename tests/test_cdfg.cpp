// CDFG IR: construction, adjacency, arc role merging, node merging,
// validation, DOT export.

#include <gtest/gtest.h>

#include "cdfg/cdfg.hpp"
#include "cdfg/dot.hpp"
#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"

namespace adc {
namespace {

Cdfg tiny() {
  Cdfg g("tiny");
  FuId alu = g.add_fu("ALU1", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := a + b")});
  NodeId b = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + c")});
  g.set_fu_order(alu, {a, b});
  g.add_arc(a, b, ArcRole::kDataDep, false, "x");
  return g;
}

TEST(Cdfg, BasicConstruction) {
  Cdfg g = tiny();
  EXPECT_EQ(g.live_node_count(), 2u);
  EXPECT_EQ(g.live_arc_count(), 1u);
  EXPECT_EQ(g.fu_count(), 1u);
}

TEST(Cdfg, ArcRolesMergeOnSameEndpoints) {
  Cdfg g = tiny();
  NodeId a = g.node_ids()[0], b = g.node_ids()[1];
  g.add_arc(a, b, ArcRole::kRegAlloc, false, "x");
  EXPECT_EQ(g.live_arc_count(), 1u) << "same endpoints must merge roles, not duplicate";
  const Arc& arc = g.arc(*g.find_arc(a, b));
  EXPECT_TRUE(has_role(arc.roles, ArcRole::kDataDep));
  EXPECT_TRUE(has_role(arc.roles, ArcRole::kRegAlloc));
}

TEST(Cdfg, BackwardArcIsDistinctFromForward) {
  Cdfg g = tiny();
  NodeId a = g.node_ids()[0], b = g.node_ids()[1];
  g.add_arc(b, a, ArcRole::kRegAlloc, /*backward=*/true, "x");
  EXPECT_EQ(g.live_arc_count(), 2u);
  EXPECT_TRUE(g.find_arc(b, a, true).has_value());
  EXPECT_FALSE(g.find_arc(b, a, false).has_value());
  EXPECT_EQ(g.arc(*g.find_arc(b, a, true)).offset(), 1);
}

TEST(Cdfg, SelfArcRejected) {
  Cdfg g = tiny();
  NodeId a = g.node_ids()[0];
  EXPECT_THROW(g.add_arc(a, a, ArcRole::kDataDep), std::invalid_argument);
}

TEST(Cdfg, RemoveArcTombstones) {
  Cdfg g = tiny();
  ArcId arc = g.arc_ids()[0];
  g.remove_arc(arc);
  EXPECT_EQ(g.live_arc_count(), 0u);
  EXPECT_TRUE(g.in_arcs(g.node_ids()[1]).empty());
  EXPECT_TRUE(g.out_arcs(g.node_ids()[0]).empty());
}

TEST(Cdfg, RemoveNodeRemovesIncidentArcs) {
  Cdfg g = tiny();
  g.remove_node(g.node_ids()[0]);
  EXPECT_EQ(g.live_node_count(), 1u);
  EXPECT_EQ(g.live_arc_count(), 0u);
  EXPECT_EQ(g.fu_order(FuId{0u}).size(), 1u) << "schedule must drop the dead node";
}

TEST(Cdfg, MergeNodesCombinesStatementsAndReroutes) {
  Cdfg g("m");
  FuId alu = g.add_fu("ALU1", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := a + b")});
  NodeId b = g.add_node(NodeKind::kAssign, alu, {parse_rtl("z := q")});
  NodeId c = g.add_node(NodeKind::kOperation, alu, {parse_rtl("w := z + x")});
  g.set_fu_order(alu, {a, b, c});
  g.add_arc(a, b, ArcRole::kScheduling);
  g.add_arc(b, c, ArcRole::kDataDep, false, "z");

  g.merge_nodes(a, b);
  EXPECT_EQ(g.live_node_count(), 2u);
  EXPECT_EQ(g.node(a).stmts.size(), 2u);
  // b's outgoing dep now leaves the merged node.
  EXPECT_TRUE(g.find_arc(a, c).has_value());
  EXPECT_EQ(g.fu_order(alu).size(), 2u);
}

TEST(Cdfg, NodeLabelJoinsStatements) {
  Cdfg g("m");
  FuId alu = g.add_fu("A", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu,
                        {parse_rtl("Y := Y + M2"), parse_rtl("X1 := X")});
  EXPECT_EQ(g.node(a).label(), "Y := Y + M2; X1 := X");
}

TEST(Cdfg, FindHelpers) {
  Cdfg g = diffeq();
  EXPECT_TRUE(g.find_fu("ALU1").has_value());
  EXPECT_TRUE(g.find_fu("MUL2").has_value());
  EXPECT_FALSE(g.find_fu("NOPE").has_value());
  EXPECT_TRUE(g.find_node_by_label("A := Y + M1").has_value());
  EXPECT_TRUE(g.find_unique(NodeKind::kStart).has_value());
  EXPECT_TRUE(g.find_unique(NodeKind::kLoop).has_value());
}

TEST(Cdfg, RegistersEnumeratesAll) {
  Cdfg g = diffeq();
  auto regs = g.registers();
  for (const char* r : {"A", "B", "C", "M1", "M2", "U", "X", "X1", "Y", "a", "dx"})
    EXPECT_NE(std::find(regs.begin(), regs.end(), r), regs.end()) << r;
}

TEST(Cdfg, ValidateAcceptsDiffeq) {
  Cdfg g = diffeq();
  EXPECT_TRUE(validate(g).empty());
}

TEST(Cdfg, ValidateRejectsForwardCycle) {
  Cdfg g = tiny();
  NodeId a = g.node_ids()[0], b = g.node_ids()[1];
  g.add_arc(b, a, ArcRole::kDataDep);  // forward cycle a->b->a
  auto errors = validate(g);
  bool found = false;
  for (const auto& e : errors)
    if (e.find("cycle") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(Cdfg, ValidateRejectsBackwardArcsBeforeGt1) {
  Cdfg g = diffeq();
  NodeId a = *g.find_node_by_label("U := U - M1");
  NodeId b = *g.find_node_by_label("M1 := U * X1");
  g.add_arc(a, b, ArcRole::kRegAlloc, /*backward=*/true);
  auto errors = validate(g, ValidateOptions{.allow_backward_arcs = false});
  EXPECT_FALSE(errors.empty());
}

TEST(Cdfg, CloneIsIndependent) {
  Cdfg g = diffeq();
  Cdfg copy = g.clone();
  std::size_t arcs_before = copy.live_arc_count();
  g.remove_arc(g.arc_ids()[0]);
  EXPECT_EQ(copy.live_arc_count(), arcs_before);
}

TEST(Cdfg, DotExportMentionsEveryFuAndNode) {
  Cdfg g = diffeq();
  std::string dot = to_dot(g);
  for (const char* fu : {"ALU1", "MUL1", "MUL2", "ALU2"})
    EXPECT_NE(dot.find(fu), std::string::npos) << fu;
  EXPECT_NE(dot.find("A := Y + M1"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(Cdfg, ArcRoleToString) {
  EXPECT_EQ(to_string(ArcRole::kControl), "ctrl");
  EXPECT_EQ(to_string(ArcRole::kControl | ArcRole::kDataDep), "ctrl|data");
}

}  // namespace
}  // namespace adc
