// The scripted global pipeline: stage composition, ablations, and the
// paper's end-to-end channel numbers.

#include <gtest/gtest.h>

#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

TEST(GlobalPipeline, DiffeqChannelReductionSeventeenToFive) {
  Cdfg g = diffeq();
  auto unopt = ChannelPlan::derive(g);
  EXPECT_EQ(unopt.count_all_channels(), 17u) << "paper Figure 12, unoptimized";

  auto res = run_global_transforms(g);
  EXPECT_EQ(res.plan.count_controller_channels(), 5u) << "paper Figure 12, optimized-GT";
  EXPECT_TRUE(validate(g).empty());
}

TEST(GlobalPipeline, StagesRunInOrder) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  ASSERT_EQ(res.stages.size(), 6u);
  EXPECT_NE(res.stages[0].name.find("GT1"), std::string::npos);
  EXPECT_NE(res.stages[1].name.find("GT2"), std::string::npos);
  EXPECT_NE(res.stages[2].name.find("GT3"), std::string::npos);
  EXPECT_NE(res.stages[3].name.find("GT4"), std::string::npos);
  EXPECT_NE(res.stages[5].name.find("GT5"), std::string::npos);
}

TEST(GlobalPipeline, AblationWithoutGt1KeepsEndloopSync) {
  Cdfg g = diffeq();
  GlobalPipelineOptions opts;
  opts.gt1 = false;
  auto res = run_global_transforms(g, opts);
  (void)res;
  // Some barrier arc into ENDLOOP from another unit survives, and with it
  // the full synchronization: iterations can never overlap.
  NodeId endloop = *g.find_unique(NodeKind::kEndLoop);
  EXPECT_GT(g.in_arcs(endloop).size(), 1u);
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 20}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  for (unsigned seed = 1; seed <= 6; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.max_overlap, 1) << "without GT1 the barrier forbids overlap";
  }
}

TEST(GlobalPipeline, AblationWithoutGt5KeepsOneWirePerArc) {
  Cdfg g = diffeq();
  GlobalPipelineOptions opts;
  opts.gt5 = false;
  auto res = run_global_transforms(g, opts);
  EXPECT_EQ(res.plan.count_controller_channels(), 10u);
  EXPECT_EQ(res.plan.count_multiway(), 0u);
}

TEST(GlobalPipeline, EveryStagePreservesSemantics) {
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 11}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(diffeq(), init);
  for (int stage = 0; stage < 5; ++stage) {
    Cdfg g = diffeq();
    GlobalPipelineOptions opts;
    opts.gt1 = stage >= 0;
    opts.gt2 = stage >= 1;
    opts.gt3 = stage >= 2;
    opts.gt4 = stage >= 3;
    opts.gt5 = stage >= 4;
    run_global_transforms(g, opts);
    for (unsigned seed = 1; seed <= 5; ++seed) {
      TokenSimOptions o;
      o.seed = seed;
      auto r = run_token_sim(g, init, o);
      EXPECT_TRUE(r.completed) << "stage " << stage << ": " << r.error;
      EXPECT_EQ(r.registers, gold) << "stage " << stage << " seed " << seed;
    }
  }
}

TEST(GlobalPipeline, AllBenchmarksStayValidAndCorrect) {
  struct Case {
    Cdfg (*make)();
    std::map<std::string, std::int64_t> init;
  };
  std::vector<Case> cases = {
      {diffeq, {{"X", 0}, {"a", 6}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}}},
      {gcd, {{"A", 21}, {"B", 14}, {"C", 1}}},
      {fir4,
       {{"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
        {"K3", 8}}},
      {mac_reduce,
       {{"X", 0}, {"K", 3}, {"T", 40}, {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}}},
      {ewf_lite, {{"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}, {"K1", 2}, {"K2", 3}, {"K3", 4}}},
  };
  for (auto& c : cases) {
    Cdfg ref = c.make();
    auto gold = run_sequential(ref, c.init);
    Cdfg g = c.make();
    auto res = run_global_transforms(g);
    EXPECT_TRUE(validate(g).empty()) << g.name();
    EXPECT_TRUE(res.plan.validate(g).empty()) << g.name();
    for (unsigned seed = 1; seed <= 5; ++seed) {
      TokenSimOptions o;
      o.seed = seed;
      auto r = run_token_sim(g, c.init, o);
      EXPECT_TRUE(r.completed) << g.name() << ": " << r.error;
      EXPECT_EQ(r.registers, gold) << g.name() << " seed " << seed;
    }
  }
}

TEST(GlobalPipeline, ChannelCountsNeverIncrease) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    std::size_t before = ChannelPlan::derive(g).count_controller_channels();
    auto res = run_global_transforms(g);
    EXPECT_LE(res.plan.count_controller_channels(), before) << g.name();
  }
}

TEST(GlobalPipeline, TotalsAggregateAcrossStages) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  EXPECT_GT(res.total_arcs_removed(), 0);
  EXPECT_GT(res.total_arcs_added(), 0);
}

}  // namespace
}  // namespace adc
