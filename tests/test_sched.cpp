// The high-level-synthesis substrate: dependence analysis, list
// scheduling, binding, and end-to-end CDFG generation.

#include <gtest/gtest.h>

#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"
#include "sched/dfg.hpp"
#include "sched/scheduler.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

std::vector<RtlStatement> parse_all(const std::vector<std::string>& texts) {
  std::vector<RtlStatement> out;
  for (const auto& t : texts) out.push_back(parse_rtl(t));
  return out;
}

TEST(Sched, RawDependence) {
  auto ops = build_dfg(parse_all({"x := a + b", "y := x + c"}));
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(ops[0].deps.empty());
  EXPECT_EQ(ops[1].deps, std::vector<std::size_t>{0u});
}

TEST(Sched, WarDependence) {
  auto ops = build_dfg(parse_all({"y := a + b", "a := c + d"}));
  EXPECT_EQ(ops[1].deps, std::vector<std::size_t>{0u})
      << "the overwrite must wait for the reader";
}

TEST(Sched, WawDependence) {
  auto ops = build_dfg(parse_all({"x := a + b", "x := c + d"}));
  EXPECT_EQ(ops[1].deps, std::vector<std::size_t>{0u});
}

TEST(Sched, IndependentOpsHaveNoDeps) {
  auto ops = build_dfg(parse_all({"x := a + b", "y := c + d"}));
  EXPECT_TRUE(ops[0].deps.empty());
  EXPECT_TRUE(ops[1].deps.empty());
}

TEST(Sched, CriticalPathPriority) {
  auto ops = build_dfg(parse_all({"x := a + b", "y := x + c", "z := y + d", "w := e + f"}));
  std::vector<int> cycles{1, 1, 1, 1};
  auto prio = critical_path_priority(ops, cycles);
  EXPECT_EQ(prio[0], 3);
  EXPECT_EQ(prio[3], 1);
}

TEST(Sched, ScheduleRespectsDependences) {
  auto ops = build_dfg(parse_all(
      {"x := a * b", "y := x + c", "z := y * d", "u := a + c", "v := u + a"}));
  Resources res;
  auto sched = list_schedule(ops, res);
  for (const auto& op : ops)
    for (std::size_t d : op.deps)
      EXPECT_GE(sched.entries[op.id].start,
                sched.entries[d].start + (needs_multiplier(ops[d].stmt) ? res.mult_cycles
                                                                        : res.alu_cycles))
          << "op " << op.id << " before dep " << d;
}

TEST(Sched, ResourceLimitsHonoured) {
  // Eight independent multiplications on two multipliers: at most two may
  // start in any cycle.
  std::vector<std::string> texts;
  for (int i = 0; i < 8; ++i)
    texts.push_back("p" + std::to_string(i) + " := a * b");
  auto ops = build_dfg(parse_all(texts));
  Resources res;
  res.mults = 2;
  auto sched = list_schedule(ops, res);
  std::map<int, int> starts;
  for (const auto& e : sched.entries) ++starts[e.start];
  for (const auto& [cycle, n] : starts) EXPECT_LE(n, 2) << "cycle " << cycle;
  EXPECT_GE(sched.makespan, 8 / 2 * res.mult_cycles);
}

TEST(Sched, BindingUsesDeclaredUnits) {
  auto ops = build_dfg(parse_all({"x := a * b", "y := c * d", "z := x + y"}));
  Resources res;
  auto sched = list_schedule(ops, res);
  for (const auto& e : sched.entries) {
    bool mul = needs_multiplier(ops[e.op].stmt);
    EXPECT_EQ(e.fu.substr(0, 3), mul ? "MUL" : "ALU");
  }
}

TEST(Sched, EndToEndDiffeqProgram) {
  // Feed the raw DIFFEQ RTL and let the substrate schedule and bind it;
  // the result must be a valid CDFG computing the same values.
  HlsProgram p;
  p.name = "diffeq_hls";
  p.loop_cond = "C";
  for (const char* t :
       {"B := 2dx + dx", "M1 := U * X1", "M2 := U * dx", "X := X + dx", "A := Y + M1",
        "M1 := A * B", "Y := Y + M2", "X1 := X", "U := U - M1", "C := X < a"})
    p.loop_body.push_back(parse_rtl(t));
  Cdfg g = schedule_and_bind(p, Resources{2, 2, 1, 2});
  EXPECT_TRUE(validate(g).empty());
  EXPECT_EQ(g.fu_count(), 4u);

  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 5}, {"dx", 1},
                                           {"U", 10}, {"Y", 3}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(g, init);
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers, gold);
}

TEST(Sched, GeneratedCdfgSurvivesTheFullPipeline) {
  HlsProgram p;
  p.name = "hls_full";
  p.loop_cond = "C";
  for (const char* t : {"M1 := U * X1", "A := Y + M1", "U := U - A", "X := X + dx",
                        "Y := Y + A", "X1 := X", "C := X < a"})
    p.loop_body.push_back(parse_rtl(t));
  Cdfg g = schedule_and_bind(p, Resources{2, 1, 1, 2});
  ASSERT_TRUE(validate(g).empty());
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 6}, {"dx", 1},
                                           {"U", 9},  {"Y", 2}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(g, init);
  auto res = run_global_transforms(g);
  (void)res;
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers, gold);
}

TEST(Sched, PrologueOnlyProgram) {
  HlsProgram p;
  p.name = "straight";
  for (const char* t : {"x := a * b", "y := c + d", "z := x + y"})
    p.prologue.push_back(parse_rtl(t));
  Cdfg g = schedule_and_bind(p, Resources{1, 1, 1, 2});
  EXPECT_TRUE(validate(g).empty());
  std::map<std::string, std::int64_t> init{{"a", 3}, {"b", 4}, {"c", 5}, {"d", 6}};
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers.at("z"), 23);
}

TEST(Sched, MoreResourcesShortenTheSchedule) {
  std::vector<std::string> texts;
  for (int i = 0; i < 6; ++i)
    texts.push_back("p" + std::to_string(i) + " := a * b");
  auto ops = build_dfg(parse_all(texts));
  Resources narrow;
  narrow.mults = 1;
  Resources wide;
  wide.mults = 3;
  EXPECT_GT(list_schedule(ops, narrow).makespan, list_schedule(ops, wide).makespan);
}

TEST(Sched, AsapRespectsDependences) {
  auto ops = build_dfg(parse_all({"x := a * b", "y := x + c", "z := y + x"}));
  std::vector<int> cycles{2, 1, 1};
  auto asap = asap_schedule(ops, cycles);
  EXPECT_EQ(asap[0], 0);
  EXPECT_EQ(asap[1], 2);
  EXPECT_EQ(asap[2], 3);
}

TEST(Sched, AlapMeetsTheDeadlineExactly) {
  auto ops = build_dfg(parse_all({"x := a * b", "y := x + c", "w := e + f"}));
  std::vector<int> cycles{2, 1, 1};
  auto alap = alap_schedule(ops, cycles);  // deadline = ASAP makespan = 3
  EXPECT_EQ(alap[0], 0);
  EXPECT_EQ(alap[1], 2);
  EXPECT_EQ(alap[2], 2) << "the independent op floats to the end";
}

TEST(Sched, SlackZeroOnCriticalPathOnly) {
  auto ops = build_dfg(parse_all({"x := a * b", "y := x + c", "w := e + f"}));
  std::vector<int> cycles{2, 1, 1};
  auto slack = schedule_slack(ops, cycles);
  EXPECT_EQ(slack[0], 0);
  EXPECT_EQ(slack[1], 0);
  EXPECT_GT(slack[2], 0);
}

TEST(Sched, ListScheduleNeverBeatsAsap) {
  // Resource constraints can only delay operations relative to the
  // unconstrained ASAP schedule.
  auto ops = build_dfg(parse_all({"p0 := a * b", "p1 := c * d", "p2 := e * f",
                                  "s := p0 + p1", "t := s + p2"}));
  std::vector<int> cycles;
  for (const auto& op : ops) cycles.push_back(needs_multiplier(op.stmt) ? 2 : 1);
  auto asap = asap_schedule(ops, cycles);
  Resources res;
  res.mults = 1;
  auto sched = list_schedule(ops, res);
  for (const auto& e : sched.entries) EXPECT_GE(e.start, asap[e.op]) << "op " << e.op;
}

TEST(Sched, EwfBenchmarkBuildsAndValidates) {
  Cdfg g = ewf();
  EXPECT_TRUE(validate(g).empty());
  EXPECT_EQ(g.fu_count(), 5u);  // 3 ALUs + 2 MULs
  EXPECT_GE(g.live_node_count(), 34u);
}

TEST(Sched, EwfFullPipelineCorrect) {
  std::map<std::string, std::int64_t> init{
      {"IN", 5},  {"k1", 2},  {"k2", 3},  {"k3", 1},  {"k4", 2},  {"k5", 3},
      {"sv1", 1}, {"sv2", 2}, {"sv3", 3}, {"sv4", 4}, {"sv5", 5}, {"sv6", 6},
      {"sv7", 7}, {"sv8", 8}};
  Cdfg g = ewf();
  auto gold = run_sequential(g, init);
  auto res = run_global_transforms(g);
  (void)res;
  for (unsigned seed = 1; seed <= 4; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

TEST(Sched, EwfResourceSweepTradesLatencyForArea) {
  Cdfg narrow = ewf(1, 1);
  Cdfg wide = ewf(4, 3);
  EXPECT_LT(wide.fu_count() == 0 ? 1 : 0, 1);  // sanity
  EXPECT_GT(wide.fu_count(), narrow.fu_count());
}

}  // namespace
}  // namespace adc
