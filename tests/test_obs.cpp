// The serving observability layer in isolation: the labeled metrics
// registry and its sliding-window histograms, Prometheus text rendering
// and the validator that re-parses it, the strict HTTP request-line
// parser against a truncation/poison corpus, the real loopback /metrics
// listener, JSONL access-log append/rotate/validate, and per-job trace
// trees exported as Chrome trace_event JSON.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "obs/access_log.hpp"
#include "obs/http.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/trace_context.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"

using namespace adc;
using namespace adc::obs;

namespace {

std::string temp_path(const char* stem) {
  static std::atomic<int> counter{0};
  return "/tmp/adc_test_obs_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + "_" + stem;
}

// --- registry ---------------------------------------------------------------

TEST(ObsRegistry, SameSeriesIsSameInstrument) {
  Registry r;
  Counter& a = r.counter("req", {{"class", "high"}});
  Counter& b = r.counter("req", {{"class", "high"}});
  Counter& c = r.counter("req", {{"class", "low"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsRegistry, HelpKeptFromFirstRegistration) {
  Registry r;
  r.counter("req", {{"class", "high"}}, "requests by class");
  r.counter("req", {{"class", "low"}}, "a different string, ignored");
  Registry::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.help.count("req"), 1u);
  EXPECT_EQ(snap.help.at("req"), "requests by class");
}

TEST(ObsRegistry, GaugeScaledMode) {
  Registry r;
  Gauge& g = r.gauge("ewma_ms");
  g.set(std::int64_t{42});
  EXPECT_FALSE(g.scaled());
  EXPECT_EQ(g.value(), 42);
  g.set(1.5);  // switches to fixed-point millis
  EXPECT_TRUE(g.scaled());
  EXPECT_DOUBLE_EQ(g.value_scaled(), 1.5);
}

TEST(ObsRegistry, SnapshotIsSortedAndComplete) {
  Registry r;
  r.counter("b.count").add(1);
  r.counter("a.count").add(2);
  r.gauge("depth", {{"class", "normal"}}).set(std::int64_t{7});
  r.histogram("wait_us").record_micros(100);

  Registry::Snapshot snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  // Map-ordered: deterministic output independent of registration order.
  EXPECT_EQ(snap.counters[0].name, "a.count");
  EXPECT_EQ(snap.counters[1].name, "b.count");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].labels,
            (Labels{{"class", "normal"}}));
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].hist.count, 1u);

  std::vector<std::string> fams = r.family_names();
  EXPECT_EQ(fams, (std::vector<std::string>{"a.count", "b.count", "depth",
                                            "wait_us"}));
}

TEST(ObsRegistry, WriteJsonShape) {
  Registry r;
  r.counter("req", {{"class", "high"}}).add(4);
  r.gauge("ratio").set(0.25);
  r.histogram("svc_us").record_micros(50);

  JsonWriter w;
  r.write_json(w);
  JsonValue v = parse_json(w.str());
  const JsonValue* counters = v.find("counters");
  ASSERT_TRUE(counters && counters->is_array());
  ASSERT_EQ(counters->array.size(), 1u);
  EXPECT_EQ(counters->array[0].at("name").string, "req");
  EXPECT_EQ(counters->array[0].at("labels").at("class").string, "high");
  EXPECT_EQ(counters->array[0].at("value").number, 4);
  EXPECT_DOUBLE_EQ(v.find("gauges")->array[0].at("value").number, 0.25);
  const JsonValue& h = v.find("histograms")->array[0];
  EXPECT_EQ(h.at("count").number, 1);
  EXPECT_EQ(h.at("sum_us").number, 50);
  ASSERT_NE(h.find("window_p99_us"), nullptr);
}

// --- sliding histogram ------------------------------------------------------

TEST(ObsSlidingHistogram, LifetimeAndWindowAgreeWhenFresh) {
  SlidingHistogram h;
  for (int i = 0; i < 100; ++i) h.record_micros(100);
  SlidingHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum_micros, 10000u);
  EXPECT_EQ(s.max_micros, 100u);
  EXPECT_EQ(s.window_count, 100u);
  // Identical samples: every quantile is the sample value (the
  // power-of-two bucket bound is clamped by the lifetime max).
  EXPECT_EQ(s.window_p50_micros, 100u);
  EXPECT_EQ(s.window_p95_micros, 100u);
  EXPECT_EQ(s.window_p99_micros, 100u);
}

TEST(ObsSlidingHistogram, QuantilesAreMonotone) {
  SlidingHistogram h;
  for (int i = 0; i < 90; ++i) h.record_micros(10);
  for (int i = 0; i < 9; ++i) h.record_micros(1000);
  h.record_micros(100000);
  SlidingHistogram::Snapshot s = h.snapshot();
  EXPECT_LE(s.window_p50_micros, s.window_p95_micros);
  EXPECT_LE(s.window_p95_micros, s.window_p99_micros);
  EXPECT_LE(s.window_p99_micros, s.max_micros);
  EXPECT_LT(s.window_p50_micros, 1000u);   // the bulk sits at 10 us
  EXPECT_GE(s.window_p99_micros, 1000u);   // the tail is visible
}

TEST(ObsSlidingHistogram, WindowExpiresLifetimePersists) {
  SlidingHistogram h;
  h.record_micros(500);
  EXPECT_EQ(h.snapshot().window_count, 1u);

  h.advance_for_test(SlidingHistogram::kSlices *
                         SlidingHistogram::kSliceSeconds +
                     SlidingHistogram::kSliceSeconds);
  SlidingHistogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.window_count, 0u) << "stale slices leaked into the window";
  EXPECT_EQ(s.window_p95_micros, 0u);
  EXPECT_EQ(s.count, 1u) << "lifetime cumulative data must never expire";
  EXPECT_EQ(s.sum_micros, 500u);

  // New samples land in a fresh slice after the gap.
  h.record_micros(700);
  EXPECT_EQ(h.snapshot().window_count, 1u);
  EXPECT_EQ(h.snapshot().count, 2u);
}

TEST(ObsSlidingHistogram, BucketEdgesCoverAndAgree) {
  // The recorder and the Prometheus renderer must agree on edges.
  EXPECT_EQ(histogram_bucket_index(0), histogram_bucket_index(1));
  for (std::uint64_t v : {1ull, 2ull, 100ull, 4096ull, 1000000ull}) {
    std::size_t i = histogram_bucket_index(v);
    // Buckets are half-open [2^i, 2^(i+1)): below the upper edge, at or
    // above the previous one.
    EXPECT_LE(v, histogram_bucket_upper_micros(i)) << v;
    if (i > 0) {
      EXPECT_GE(v, histogram_bucket_upper_micros(i - 1)) << v;
    }
  }
  // The last bucket swallows anything, so +Inf == _count holds.
  EXPECT_EQ(histogram_bucket_index(~0ull), SlidingHistogram::kBuckets - 1);
}

// --- prometheus rendering ---------------------------------------------------

TEST(ObsPrometheus, NameSanitizeAndLabelEscape) {
  EXPECT_EQ(prom_sanitize_name("serve.queue.wait_us"),
            "adc_serve_queue_wait_us");
  EXPECT_EQ(prom_sanitize_name("a-b c"), "adc_a_b_c");
  EXPECT_EQ(prom_escape_label("plain"), "plain");
  EXPECT_EQ(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ObsPrometheus, GoldenCounterAndGaugeRender) {
  Registry r;
  r.counter("serve.submissions", {{"class", "high"}}, "jobs accepted").add(3);
  r.counter("serve.submissions", {{"class", "low"}}).add(1);
  r.gauge("serve.running", {}, "1 while serving").set(std::int64_t{1});

  const std::string got = render_prometheus(r.snapshot());
  const std::string want =
      "# HELP adc_serve_submissions_total jobs accepted\n"
      "# TYPE adc_serve_submissions_total counter\n"
      "adc_serve_submissions_total{class=\"high\"} 3\n"
      "adc_serve_submissions_total{class=\"low\"} 1\n"
      "# HELP adc_serve_running 1 while serving\n"
      "# TYPE adc_serve_running gauge\n"
      "adc_serve_running 1\n";
  EXPECT_EQ(got, want);
}

TEST(ObsPrometheus, HistogramRenderIsCoherentAndValidates) {
  Registry r;
  SlidingHistogram& h = r.histogram("svc_us", {{"class", "normal"}}, "svc");
  h.record_micros(3);
  h.record_micros(3);
  h.record_micros(5000);

  const std::string text = render_prometheus(r.snapshot());
  EXPECT_EQ(validate_prometheus_text(text), std::vector<std::string>{});
  // Cumulative buckets end in +Inf == _count.
  EXPECT_NE(text.find("adc_svc_us_bucket{class=\"normal\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("adc_svc_us_count{class=\"normal\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("adc_svc_us_sum{class=\"normal\"} 5006\n"),
            std::string::npos);
  // Windowed quantiles surface as a sibling gauge family.
  EXPECT_NE(text.find("# TYPE adc_svc_us_window gauge"), std::string::npos);
  EXPECT_NE(text.find("adc_svc_us_window{class=\"normal\",quantile=\"0.5\"}"),
            std::string::npos);
}

TEST(ObsPrometheus, ValidatorRejectsBrokenText) {
  // Sample with no TYPE anywhere.
  EXPECT_FALSE(validate_prometheus_text("orphan_metric 1\n").empty());
  // Duplicate series.
  EXPECT_FALSE(validate_prometheus_text("# TYPE m counter\nm 1\nm 2\n")
                   .empty());
  // Non-cumulative histogram buckets.
  EXPECT_FALSE(
      validate_prometheus_text("# TYPE h histogram\n"
                               "h_bucket{le=\"1\"} 5\n"
                               "h_bucket{le=\"2\"} 3\n"
                               "h_bucket{le=\"+Inf\"} 5\n"
                               "h_sum 9\nh_count 5\n")
          .empty());
  // +Inf bucket disagreeing with _count.
  EXPECT_FALSE(
      validate_prometheus_text("# TYPE h histogram\n"
                               "h_bucket{le=\"+Inf\"} 4\n"
                               "h_sum 9\nh_count 5\n")
          .empty());
  // Unterminated label block, bad escape, missing value.
  for (const char* bad :
       {"# TYPE m counter\nm{k=\"v\" 1\n", "# TYPE m counter\nm{k=\"\\x\"} 1\n",
        "# TYPE m counter\nm\n", "# TYPE m counter\nm{9bad=\"v\"} 1\n"}) {
    EXPECT_FALSE(validate_prometheus_text(bad).empty()) << bad;
  }
  // The empty body is trivially valid (a daemon with nothing registered).
  EXPECT_TRUE(validate_prometheus_text("").empty());
}

// --- http request-line parser (fuzz corpus) ---------------------------------

TEST(ObsHttp, ParsesWellFormedRequestLines) {
  HttpRequestLine r = parse_http_request_line("GET /metrics HTTP/1.1");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/metrics");
  EXPECT_EQ(r.version, "HTTP/1.1");

  r = parse_http_request_line("GET / HTTP/1.0");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.target, "/");

  // Other token methods parse; the listener answers 405 on its own.
  EXPECT_TRUE(parse_http_request_line("POST /metrics HTTP/1.1").ok);
}

TEST(ObsHttp, TruncatedAndPoisonRequestLinesAreRejected) {
  const char* corpus[] = {
      "",                                // empty
      "GET",                             // method only
      "GET ",                            // truncated after SP
      "GET /metrics",                    // version missing
      "GET /metrics ",                   // trailing SP, empty version
      "GET  /metrics HTTP/1.1",          // double space
      "GET /metrics HTTP/1.1 extra",     // trailing garbage
      " GET /metrics HTTP/1.1",          // leading space
      "GET metrics HTTP/1.1",            // target not origin-form
      "GET http://x/metrics HTTP/1.1",   // absolute-form target
      "GET /metrics HTTP/2.0",           // unknown version
      "GET /metrics HTTQ/1.1",           // mangled protocol
      "G\x01T /metrics HTTP/1.1",        // control byte in method
      "GET /met\trics HTTP/1.1",         // tab inside target
      "\r\nGET /metrics HTTP/1.1",       // stray CRLF prefix
      "GET /metrics\x00junk HTTP/1.1",   // embedded NUL (truncates)
  };
  for (const char* line : corpus) {
    HttpRequestLine r = parse_http_request_line(line);
    EXPECT_FALSE(r.ok) << "accepted: [" << line << "]";
    EXPECT_FALSE(r.error.empty());
  }
  // A megabyte of junk must fail cleanly, not hang or allocate wildly.
  EXPECT_FALSE(parse_http_request_line(std::string(1 << 20, 'A')).ok);
}

TEST(ObsHttp, LoopbackServerServesGetAndSurvivesGarbage) {
  MetricsHttpServer server;
  std::string error;
  ASSERT_TRUE(server.start(
      "127.0.0.1", 0,
      [](const std::string& path, std::string* type, std::string* body) {
        if (path != "/metrics") return false;
        *type = "text/plain; version=0.0.4; charset=utf-8";
        *body = "# TYPE up gauge\nup 1\n";
        return true;
      },
      &error))
      << error;
  ASSERT_GT(server.port(), 0);

  int status = 0;
  std::string body;
  ASSERT_TRUE(
      obs::http_get("127.0.0.1", server.port(), "/metrics", 2000, &status,
                    &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "# TYPE up gauge\nup 1\n");

  ASSERT_TRUE(obs::http_get("127.0.0.1", server.port(), "/nope", 2000,
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 404);

  // Raw garbage on the socket: the listener must answer (400) or hang up,
  // and keep serving afterwards either way.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "\x00\xff garbage \r\n\r\n";
  [[maybe_unused]] ssize_t n = ::write(fd, junk, sizeof(junk));
  char buf[256];
  while (::read(fd, buf, sizeof(buf)) > 0) {
  }
  ::close(fd);

  ASSERT_TRUE(obs::http_get("127.0.0.1", server.port(), "/metrics", 2000,
                            &status, &body, &error))
      << error;
  EXPECT_EQ(status, 200);
  EXPECT_GE(server.requests_served(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
}

// --- access log -------------------------------------------------------------

AccessLogEntry sample_entry(std::uint64_t id) {
  AccessLogEntry e;
  e.event = "done";
  e.id = id;
  e.trace_id = "0123456789abcdef";
  e.priority = "normal";
  e.client = "test";
  e.bench = "diffeq";
  e.script = "gt2; lt";
  e.status = "ok";
  e.queue_wait_us = 12;
  e.service_us = 3400;
  e.wall_ms = 4;
  e.result_bytes = 900;
  return e;
}

TEST(ObsAccessLog, AppendedLinesValidate) {
  const std::string path = temp_path("access.jsonl");
  {
    AccessLog log(path, /*max_bytes=*/0);
    ASSERT_TRUE(log.ok());
    log.append(sample_entry(1));
    AccessLogEntry rejected;
    rejected.event = "rejected";
    rejected.priority = "high";
    rejected.bench = "diffeq";
    rejected.script = "lt";
    rejected.status = "busy";
    rejected.retry_after_ms = 125;
    log.append(rejected);
    AccessLogEntry cancelled = sample_entry(2);
    cancelled.event = "cancelled";
    cancelled.status = "cancelled";
    log.append(cancelled);
    EXPECT_EQ(log.lines(), 3u);
  }
  std::uint64_t lines = 0;
  EXPECT_EQ(AccessLog::validate(path, &lines), std::vector<std::string>{});
  EXPECT_EQ(lines, 3u);
  std::remove(path.c_str());
}

TEST(ObsAccessLog, RotationKeepsTwoGenerations) {
  const std::string path = temp_path("rotate.jsonl");
  AccessLog log(path, /*max_bytes=*/400);
  for (std::uint64_t i = 1; i <= 20; ++i) log.append(sample_entry(i));
  log.flush();

  // Both generations exist, both validate, and no line was torn by the
  // rename.
  std::uint64_t cur = 0, old = 0;
  EXPECT_EQ(AccessLog::validate(path, &cur), std::vector<std::string>{});
  EXPECT_EQ(AccessLog::validate(path + ".1", &old),
            std::vector<std::string>{});
  EXPECT_GT(cur, 0u);
  EXPECT_GT(old, 0u);
  EXPECT_LT(cur + old, 20u + 1u);  // rotation dropped older generations
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
}

TEST(ObsAccessLog, ValidateCatchesGarbage) {
  const std::string path = temp_path("bad.jsonl");
  std::ofstream out(path);
  out << "{\"ts_ms\":1,\"event\":\"done\",\"id\":1}\n";  // missing members
  out << "this is not json\n";
  out << "{\"ts_ms\":2,\"event\":\"exploded\",\"id\":2}\n";  // bad enum
  out.close();
  std::vector<std::string> problems = AccessLog::validate(path);
  EXPECT_GE(problems.size(), 3u);
  // A missing file is a problem, not a crash.
  EXPECT_FALSE(AccessLog::validate(temp_path("nonexistent")).empty());
  std::remove(path.c_str());
}

// --- job traces -------------------------------------------------------------

TEST(ObsJobTrace, SpanTreeAndHexId) {
  JobTrace trace(0x0123456789abcdefull);
  EXPECT_EQ(trace.trace_id_hex(), "0123456789abcdef");

  std::uint64_t root = trace.begin("job", "serve", 0);
  std::uint64_t child = trace.begin("queue.wait", "serve", root);
  trace.annotate(root, "benchmark", "diffeq");
  trace.end(child);
  trace.end(root, {{"status", "ok"}});

  std::vector<TraceSpanRecord> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_GT(spans[0].end_us, 0u);
  // Ends are clamped past starts so zero-width spans stay visible.
  EXPECT_GT(spans[0].end_us, spans[0].start_us);

  // Closing twice or closing an unknown id is harmless.
  trace.end(root);
  trace.end(999);
}

TEST(ObsJobTrace, ChromeExportShapeAndConnectivity) {
  JobTrace trace(42);
  std::uint64_t root = trace.begin("job", "serve", 0);
  std::uint64_t stage = trace.begin("flow.run", "flow", root);
  std::uint64_t open_span = trace.begin("never.closed", "flow", stage);
  (void)open_span;
  std::thread other([&] { trace.end(trace.begin("controller", "ctl", stage)); });
  other.join();
  trace.end(stage);
  trace.end(root, {{"status", "ok"}});

  JsonWriter w;
  trace.write_chrome_trace(w, /*pid=*/7);
  JsonValue doc = parse_json(w.str());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_TRUE(events && events->is_array());

  std::set<std::uint64_t> span_ids;
  std::vector<const JsonValue*> complete;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.at("ph").string;
    EXPECT_EQ(e.at("pid").number, 7);
    if (ph == "M") {
      EXPECT_EQ(e.find("ts"), nullptr) << "metadata events carry no clock";
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_GT(e.at("dur").number, 0);
    span_ids.insert(
        static_cast<std::uint64_t>(e.at("args").at("span_id").number));
    complete.push_back(&e);
  }
  // The still-open span is excluded; the cross-thread span made it in.
  ASSERT_EQ(complete.size(), 3u);
  for (const JsonValue* e : complete) {
    std::uint64_t parent = static_cast<std::uint64_t>(
        e->at("args").at("parent_span_id").number);
    EXPECT_TRUE(parent == 0 || span_ids.count(parent))
        << "dangling parent_span_id " << parent;
    EXPECT_EQ(e->at("args").at("trace_id").string, trace.trace_id_hex());
  }
  // Two distinct threads touched the trace: both appear as thread_name
  // metadata rows.
  std::set<double> tids;
  for (const JsonValue& e : events->array)
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name")
      tids.insert(e.at("tid").number);
  EXPECT_GE(tids.size(), 2u);
}

TEST(ObsJobTrace, InertContextCostsNothing) {
  TraceContext empty;
  EXPECT_FALSE(empty.active());
  TraceSpan span(empty, "anything");
  EXPECT_FALSE(span.active());
  span.arg("ignored", std::uint64_t{1});
  // Child contexts of an inert span stay inert.
  EXPECT_FALSE(span.context().active());
}

TEST(ObsJobTrace, TraceSpanRaiiAttachesArgsOnClose) {
  auto trace = std::make_shared<JobTrace>(1);
  TraceContext root_ctx(trace, 0);
  std::uint64_t child_id = 0;
  {
    TraceSpan span(root_ctx, "stage", "flow");
    ASSERT_TRUE(span.active());
    span.arg("k", "v");
    TraceSpan child(span.context(), "inner");
    child_id = child.id();
  }
  std::vector<TraceSpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "stage");
  ASSERT_EQ(spans[0].args.size(), 1u);
  EXPECT_EQ(spans[0].args[0].first, "k");
  EXPECT_GT(spans[0].end_us, 0u);
  EXPECT_EQ(spans[1].id, child_id);
  EXPECT_EQ(spans[1].parent, spans[0].id);
}

}  // namespace
