// Local transformations LT1-LT5 (§5): each transform's individual effect,
// pipeline composition, the paper's Figure 12 GT+LT state counts, and
// validity after every rewrite.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/print.hpp"
#include "xbm/validate.hpp"

namespace adc {
namespace {

struct System {
  Cdfg g{"empty"};
  ChannelPlan plan;
  std::vector<ExtractedController> controllers;
};

System diffeq_gt() {
  System s;
  s.g = diffeq();
  auto res = run_global_transforms(s.g);
  s.plan = std::move(res.plan);
  s.controllers = extract_controllers(s.g, s.plan);
  return s;
}

ExtractedController& by_name(System& s, const char* name) {
  for (auto& c : s.controllers)
    if (s.g.fu(c.fu).name == name) return c;
  throw std::runtime_error("controller not found");
}

TEST(Ltrans, Figure12OptimizedGtAndLtCounts) {
  // Paper row 3: ALU1 7/9, ALU2 11/13, MUL1 6/6, MUL2 4/5 — and Yun's
  // manual design: 7/9, 14/16, 4/4, 3/3.  Our pipeline lands in the same
  // band: single-digit machines, ALU2 largest.
  System s = diffeq_gt();
  std::map<std::string, std::pair<std::size_t, std::size_t>> got;
  for (auto& c : s.controllers) {
    run_local_transforms(c);
    got[s.g.fu(c.fu).name] = {c.machine.state_count(), c.machine.transition_count()};
  }
  EXPECT_EQ(got["ALU1"], (std::pair<std::size_t, std::size_t>{7u, 7u}));
  EXPECT_LE(got["ALU2"].first, 14u);
  EXPECT_GE(got["ALU2"].first, 6u);
  EXPECT_LE(got["MUL1"].first, 6u);
  EXPECT_LE(got["MUL2"].first, 5u);
}

TEST(Ltrans, EveryStageKeepsMachinesValid) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    auto res = run_global_transforms(g);
    for (auto& c : extract_controllers(g, res.plan)) {
      EXPECT_NO_THROW(run_local_transforms(c)) << g.name() << "/" << c.machine.name();
      EXPECT_TRUE(validate(c.machine).empty()) << g.name() << "/" << c.machine.name();
    }
  }
}

TEST(Ltrans, Lt1MovesDonesToTheLatchTransition) {
  // The paper's §5.1 example: A1M+ moves next to reg latching.
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  int n = lt1_move_up(alu1.machine, alu1.bindings);
  EXPECT_GT(n, 0);
  EXPECT_TRUE(validate(alu1.machine).empty());
  // Some transition now emits a latch strobe and a global done together.
  bool together = false;
  for (TransitionId t : alu1.machine.transition_ids()) {
    bool lat = false, done = false;
    for (const auto& e : alu1.machine.transition(t).outputs) {
      auto it = alu1.bindings.find(e.signal.value());
      if (it == alu1.bindings.end()) continue;
      if (it->second.role == SignalRole::kLatch) lat = true;
      if (it->second.role == SignalRole::kGlobalReady) done = true;
    }
    if (lat && done) together = true;
  }
  EXPECT_TRUE(together);
}

TEST(Ltrans, Lt4RemovesAllLocalAckEdges) {
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  LocalTransformOptions opts;
  int removed = lt4_remove_acks(alu1.machine, alu1.bindings, opts);
  EXPECT_GT(removed, 0);
  for (TransitionId t : alu1.machine.transition_ids())
    for (const auto& e : alu1.machine.transition(t).inputs) {
      auto it = alu1.bindings.find(e.signal.value());
      if (it == alu1.bindings.end()) continue;
      SignalRole r = it->second.role;
      EXPECT_TRUE(r != SignalRole::kMuxAck && r != SignalRole::kOpAck &&
                  r != SignalRole::kRegMuxAck && r != SignalRole::kLatchAck)
          << alu1.machine.signal(e.signal).name;
    }
}

TEST(Ltrans, FuDoneWaitsSurviveLt4) {
  // Operation latency is genuinely variable: done must still be observed.
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  run_local_transforms(alu1);
  int done_waits = 0;
  for (TransitionId t : alu1.machine.transition_ids())
    for (const auto& e : alu1.machine.transition(t).inputs) {
      auto it = alu1.bindings.find(e.signal.value());
      if (it != alu1.bindings.end() && it->second.role == SignalRole::kFuDone &&
          !e.directed_dont_care && e.polarity == EdgePolarity::kRising)
        ++done_waits;
    }
  EXPECT_EQ(done_waits, 3) << "one rising-done wait per RTL operation";
}

TEST(Ltrans, Lt3ElidesRepeatedMuxSource) {
  // A := Y + M1 then U := U - M1: the right mux keeps M1 selected, so the
  // reset/set pair on selR_M1 disappears.
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  run_local_transforms(alu1);
  int selR_M1_edges = 0;
  auto sig = alu1.machine.find_signal("selR_M1");
  ASSERT_TRUE(sig.has_value());
  for (TransitionId t : alu1.machine.transition_ids())
    for (const auto& e : alu1.machine.transition(t).outputs)
      if (e.signal == *sig) ++selR_M1_edges;
  EXPECT_LE(selR_M1_edges, 2) << "at most one set and one reset per ring cycle";
}

TEST(Ltrans, Lt5SharesRegisterMuxAndLatch) {
  System s = diffeq_gt();
  auto& mul2 = by_name(s, "MUL2");
  auto res = run_local_transforms(mul2);
  bool rsel_lat_shared = false;
  for (const auto& [a, b] : res.shared_signals)
    if ((a.rfind("rsel_", 0) == 0 && b.rfind("lat_", 0) == 0) ||
        (a.rfind("lat_", 0) == 0 && b.rfind("rsel_", 0) == 0))
      rsel_lat_shared = true;
  EXPECT_TRUE(rsel_lat_shared)
      << "register mux select and latch strobe coincide after folding";
}

TEST(Ltrans, SharedSignalsReduceLiveOutputs) {
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  std::size_t before = live_signal_count(alu1.machine, SignalKind::kOutput);
  auto res = run_local_transforms(alu1);
  std::size_t after = live_signal_count(alu1.machine, SignalKind::kOutput);
  EXPECT_EQ(after + res.shared_signals.size(), before);
}

TEST(Ltrans, InitialStateSplitKeepsFirstIterationClean) {
  // The ring-head transition carries the previous iteration's resets; the
  // split initial state must offer a reset-free first-iteration entry.
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  run_local_transforms(alu1);
  StateId init = alu1.machine.initial();
  auto outs = alu1.machine.out_transitions(init);
  ASSERT_EQ(outs.size(), 1u);
  for (const auto& e : alu1.machine.transition(outs[0]).outputs)
    EXPECT_NE(e.polarity, EdgePolarity::kFalling)
        << "nothing to reset on the very first iteration";
}

TEST(Ltrans, DisabledStagesAreRespected) {
  System s = diffeq_gt();
  auto& mul1 = by_name(s, "MUL1");
  std::size_t before = mul1.machine.state_count();
  LocalTransformOptions off;
  off.lt1_move_up_dones = false;
  off.lt2_move_down_resets = false;
  off.lt3_mux_preselection = false;
  off.lt4_remove_acks = false;
  off.lt5_signal_sharing = false;
  auto res = run_local_transforms(mul1, off);
  EXPECT_EQ(mul1.machine.state_count(), before);
  EXPECT_TRUE(res.stats.notes.empty());
}

TEST(Ltrans, Lt4AloneShrinksMachines) {
  System s = diffeq_gt();
  auto& mul1 = by_name(s, "MUL1");
  std::size_t before = mul1.machine.state_count();
  LocalTransformOptions only4;
  only4.lt1_move_up_dones = false;
  only4.lt2_move_down_resets = false;
  only4.lt3_mux_preselection = false;
  only4.lt5_signal_sharing = false;
  run_local_transforms(mul1, only4);
  EXPECT_LT(mul1.machine.state_count(), before);
  EXPECT_TRUE(validate(mul1.machine).empty());
}

TEST(Ltrans, WorksOnUnoptimizedExtractionsToo) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  for (auto& c : extract_controllers(g, plan)) {
    std::size_t before = c.machine.state_count();
    EXPECT_NO_THROW(run_local_transforms(c));
    EXPECT_LT(c.machine.state_count(), before) << c.machine.name();
    EXPECT_TRUE(validate(c.machine).empty());
  }
}

TEST(Ltrans, FoldIsIdempotentAfterPipeline) {
  System s = diffeq_gt();
  auto& alu1 = by_name(s, "ALU1");
  run_local_transforms(alu1);
  std::size_t states = alu1.machine.state_count();
  int more = fold_trivial_transitions(alu1.machine, &alu1.bindings);
  EXPECT_EQ(more, 0);
  EXPECT_EQ(alu1.machine.state_count(), states);
}

}  // namespace
}  // namespace adc
