// Perf harness: the Stat reduction (nearest-rank quantiles, trim-the-worst
// outlier policy), the BENCH JSON schema round-trip, the validator that
// `adc_obs_check --bench` runs, the baseline comparison gating `adc_bench
// --check`, and the measurement registry itself.

#include "perf/measure.hpp"

#include <gtest/gtest.h>

#include "report/json_parse.hpp"

namespace adc {
namespace perf {
namespace {

// --- Stat reduction --------------------------------------------------------

TEST(PerfStat, NearestRankQuantilesAreOrdered) {
  Stat s = stat_from_samples({5, 1, 4, 2, 3}, false);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.p50, 3.0);
  EXPECT_EQ(s.p90, 5.0);
  EXPECT_EQ(s.p99, 5.0);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(PerfStat, TrimExcludesTheWorstSampleFromLocationStats) {
  // One scheduler hiccup (1000) must not shift p50/mean, but p99/max still
  // report it.
  Stat s = stat_from_samples({10, 10, 10, 10, 1000}, true);
  EXPECT_EQ(s.p50, 10.0);
  EXPECT_EQ(s.mean, 10.0);
  EXPECT_EQ(s.p99, 1000.0);
  EXPECT_EQ(s.max, 1000.0);
}

TEST(PerfStat, TrimNeedsAtLeastFiveSamples) {
  Stat s = stat_from_samples({1, 2, 3, 100}, true);
  EXPECT_EQ(s.mean, 26.5);  // nothing trimmed
  EXPECT_EQ(s.max, 100.0);
}

TEST(PerfStat, EmptyAndSingleton) {
  Stat e = stat_from_samples({}, true);
  EXPECT_EQ(e.p50, 0.0);
  EXPECT_EQ(e.max, 0.0);
  Stat one = stat_from_samples({7}, true);
  EXPECT_EQ(one.p50, 7.0);
  EXPECT_EQ(one.min, 7.0);
  EXPECT_EQ(one.max, 7.0);
}

// --- schema round-trip -----------------------------------------------------

BenchReport sample_report() {
  BenchReport rep;
  rep.tool = "test";
  rep.env.git_sha = "abc123";
  rep.env.compiler = "g++ 13";
  rep.env.flags = "-O2";
  rep.env.build_type = "Release";
  rep.env.os = "linux";
  rep.env.timestamp = "2026-01-01T00:00:00Z";
  rep.env.cores = 4;
  rep.policy.warmup = 2;
  rep.policy.repeats = 7;  // distinct from any record's repeats
  rep.policy.trim_outliers = true;
  rep.policy.quick = false;
  BenchRecord a;
  a.suite = "sim";
  a.name = "sim.diffeq";
  a.repeats = 9;
  a.wall_us = stat_from_samples({100, 110, 105, 102, 108});
  a.cpu_us = stat_from_samples({90, 95, 92, 91, 94});
  a.peak_rss_kb = 2048;
  a.counters["finish_time"] = 842.0;
  a.stages.push_back({"frontend", 10, 9, false});
  a.stages.push_back({"global", 20, 19, true});
  rep.benchmarks.push_back(a);
  BenchRecord b;
  b.suite = "flow";
  b.name = "flow.cold";
  b.repeats = 3;
  b.wall_us = stat_from_samples({500, 510, 505}, false);
  b.cpu_us = stat_from_samples({400, 410, 405}, false);
  b.peak_rss_kb = 4096;
  rep.benchmarks.push_back(b);
  return rep;
}

TEST(PerfRecord, JsonRoundTripPreservesEverything) {
  BenchReport rep = sample_report();
  BenchReport back = parse_bench_report(to_json(rep));
  EXPECT_EQ(back.version, kBenchVersion);
  EXPECT_EQ(back.tool, "test");
  EXPECT_EQ(back.env.git_sha, "abc123");
  EXPECT_EQ(back.env.compiler, "g++ 13");
  EXPECT_EQ(back.env.cores, 4u);
  EXPECT_EQ(back.policy.warmup, 2u);
  EXPECT_EQ(back.policy.repeats, 7u);
  EXPECT_TRUE(back.policy.trim_outliers);
  ASSERT_EQ(back.benchmarks.size(), 2u);
  const BenchRecord* a = back.find("sim.diffeq");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->suite, "sim");
  EXPECT_EQ(a->repeats, 9u);
  EXPECT_EQ(a->wall_us.p50, rep.benchmarks[0].wall_us.p50);
  EXPECT_EQ(a->cpu_us.max, rep.benchmarks[0].cpu_us.max);
  EXPECT_EQ(a->peak_rss_kb, 2048);
  EXPECT_EQ(a->counters.at("finish_time"), 842.0);
  ASSERT_EQ(a->stages.size(), 2u);
  EXPECT_EQ(a->stages[1].stage, "global");
  EXPECT_EQ(a->stages[1].us, 20u);
  EXPECT_EQ(a->stages[1].cpu_us, 19u);
  EXPECT_TRUE(a->stages[1].cached);
  EXPECT_EQ(back.find("flow.cold")->peak_rss_kb, 4096);
}

TEST(PerfRecord, EmittedJsonPassesTheValidator) {
  JsonValue doc = parse_json(to_json(sample_report()));
  std::vector<std::string> problems = validate_bench_json(doc);
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(PerfRecord, ValidatorCatchesBrokenDocuments) {
  auto has_problem = [](const std::string& json, const std::string& what) {
    for (const std::string& p : validate_bench_json(parse_json(json)))
      if (p.find(what) != std::string::npos) return true;
    return false;
  };
  EXPECT_TRUE(has_problem("[]", "not an object"));
  EXPECT_TRUE(has_problem("{\"kind\": \"nope\"}", "kind is not"));

  // Mutate a valid document one field at a time.
  std::string good = to_json(sample_report());
  auto swap = [&](const std::string& from, const std::string& to) {
    std::string s = good;
    std::size_t at = s.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    return s.replace(at, from.size(), to);
  };
  EXPECT_TRUE(has_problem(swap("\"version\": 1", "\"version\": 99"),
                          "version is not"));
  EXPECT_TRUE(has_problem(swap("\"cores\": 4", "\"cores\": 0"), "cores < 1"));
  EXPECT_TRUE(has_problem(swap("\"name\": \"flow.cold\"",
                               "\"name\": \"sim.diffeq\""),
                          "duplicate benchmark"));
  EXPECT_TRUE(has_problem(swap("\"repeats\": 9", "\"repeats\": 0"),
                          "repeats < 1"));
  EXPECT_TRUE(has_problem(swap("\"peak_rss_kb\": 2048", "\"peak_rss_kb\": -1"),
                          "peak_rss_kb missing or negative"));
}

TEST(PerfRecord, ValidatorChecksStatOrdering) {
  BenchReport rep = sample_report();
  rep.benchmarks[0].wall_us.p50 = 1000.0;  // now p50 > p90
  bool found = false;
  for (const std::string& p : validate_bench_json(parse_json(to_json(rep))))
    if (p.find("p50 > p90") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(PerfRecord, ParseRejectsWrongKindAndVersion) {
  EXPECT_THROW(parse_bench_report("{\"kind\": \"other\"}"), std::runtime_error);
  BenchReport rep = sample_report();
  std::string s = to_json(rep);
  std::size_t at = s.find("\"version\": 1");
  s.replace(at, 12, "\"version\": 7");
  EXPECT_THROW(parse_bench_report(s), std::runtime_error);
}

// --- baseline comparison ---------------------------------------------------

BenchRecord record_with_p50(const std::string& name, double p50) {
  BenchRecord r;
  r.suite = "s";
  r.name = name;
  r.repeats = 1;
  r.wall_us = stat_from_samples({p50}, false);
  r.cpu_us = r.wall_us;
  return r;
}

TEST(PerfCompare, GrowthBeyondThresholdIsARegression) {
  BenchReport base, cur;
  base.benchmarks.push_back(record_with_p50("a", 100));
  cur.benchmarks.push_back(record_with_p50("a", 150));
  auto deltas = compare_reports(base, cur, {10.0, 50.0});
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_TRUE(deltas[0].regressed);
  EXPECT_NEAR(deltas[0].pct, 50.0, 1e-9);
  EXPECT_TRUE(has_regression(deltas));
  // Same current under a looser threshold: fine.
  EXPECT_FALSE(has_regression(compare_reports(base, cur, {60.0, 50.0})));
}

TEST(PerfCompare, SubFloorTimingsAreNeverFlagged) {
  BenchReport base, cur;
  base.benchmarks.push_back(record_with_p50("tiny", 10));
  cur.benchmarks.push_back(record_with_p50("tiny", 40));  // +300% but < 50us
  EXPECT_FALSE(has_regression(compare_reports(base, cur, {10.0, 50.0})));
  // Once the current crosses the floor the growth counts again.
  cur.benchmarks[0] = record_with_p50("tiny", 60);
  EXPECT_TRUE(has_regression(compare_reports(base, cur, {10.0, 50.0})));
}

TEST(PerfCompare, VanishedBenchmarkIsARegressionNewOneIsNot) {
  BenchReport base, cur;
  base.benchmarks.push_back(record_with_p50("old", 100));
  cur.benchmarks.push_back(record_with_p50("new", 100));
  auto deltas = compare_reports(base, cur, {});
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_TRUE(deltas[0].only_in_baseline);
  EXPECT_TRUE(deltas[0].regressed);
  EXPECT_TRUE(deltas[1].only_in_current);
  EXPECT_FALSE(deltas[1].regressed);
  std::string rendered = render_deltas(deltas, {});
  EXPECT_NE(rendered.find("MISSING"), std::string::npos);
  EXPECT_NE(rendered.find("new"), std::string::npos);
}

TEST(PerfCompare, ImprovementIsNotARegression) {
  BenchReport base, cur;
  base.benchmarks.push_back(record_with_p50("a", 200));
  cur.benchmarks.push_back(record_with_p50("a", 100));
  auto deltas = compare_reports(base, cur, {10.0, 50.0});
  EXPECT_FALSE(has_regression(deltas));
  EXPECT_LT(deltas[0].pct, 0.0);
}

// --- measurement harness ---------------------------------------------------

TEST(PerfMeasure, RunsWarmupPlusRepeatsAndKeepsCounters) {
  int calls = 0;
  Benchmark b{"t", "t.counting", [&calls](BenchContext& ctx) {
                ++calls;
                ctx.counters["calls"] = static_cast<double>(calls);
                ctx.stages.push_back({"stage1", 5, 4, false});
              }};
  MeasureOptions opts;
  opts.warmup = 2;
  opts.repeats = 3;
  BenchRecord rec = measure(b, opts);
  EXPECT_EQ(calls, 5);  // 2 untimed + 3 timed
  EXPECT_EQ(rec.name, "t.counting");
  EXPECT_EQ(rec.suite, "t");
  EXPECT_EQ(rec.repeats, 3u);
  EXPECT_EQ(rec.counters.at("calls"), 5.0);  // last repetition wins
  ASSERT_EQ(rec.stages.size(), 1u);
  EXPECT_EQ(rec.stages[0].stage, "stage1");
  EXPECT_GE(rec.wall_us.max, rec.wall_us.min);
  EXPECT_GE(rec.peak_rss_kb, 0);
}

TEST(PerfMeasure, RegistryFiltersBySuiteAndName) {
  auto& reg = BenchRegistry::instance();
  reg.add({"zza", "zza.one", [](BenchContext&) {}});
  reg.add({"zza", "zza.two", [](BenchContext&) {}});
  reg.add({"zzb", "zzb.one", [](BenchContext&) {}});
  MeasureOptions opts;
  opts.warmup = 0;
  opts.repeats = 1;
  BenchReport by_suite = run_registered({"zza"}, "", opts, "test");
  EXPECT_EQ(by_suite.benchmarks.size(), 2u);
  BenchReport by_name = run_registered({}, "zzb.", opts, "test");
  ASSERT_EQ(by_name.benchmarks.size(), 1u);
  EXPECT_EQ(by_name.benchmarks[0].name, "zzb.one");
  EXPECT_EQ(by_name.tool, "test");
  EXPECT_EQ(by_name.policy.repeats, 1u);
  // The report is immediately schema-valid.
  EXPECT_TRUE(validate_bench_json(parse_json(to_json(by_name))).empty());
}

TEST(PerfMeasure, CaptureEnvFillsTheFingerprint) {
  BenchEnv env = capture_env();
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.os.empty());
  EXPECT_FALSE(env.timestamp.empty());
  EXPECT_GE(env.cores, 1u);
}

TEST(PerfMeasure, ClocksAreMonotone) {
  std::uint64_t w0 = wall_now_micros();
  std::uint64_t c0 = process_cpu_micros();
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(wall_now_micros(), w0);
  EXPECT_GE(process_cpu_micros(), c0);
}

}  // namespace
}  // namespace perf
}  // namespace adc
