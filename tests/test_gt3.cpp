// GT3 relative-timing optimization (§3.3): the paper's arc-10 removal, the
// structural fast path, sensitivity to the delay model, and safety.

#include <gtest/gtest.h>

#include "frontend/benchmarks.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"

namespace adc {
namespace {

Cdfg diffeq_after_gt1_gt2() {
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  return g;
}

TEST(Gt3, RemovesThePapersArc10) {
  // Figure 3/4: of the two arcs into U := U - M1, the MUL2 arc (one
  // multiplication) is always earlier than the MUL1 arc (mul+alu+mul), so
  // it is deleted.
  Cdfg g = diffeq_after_gt1_gt2();
  NodeId m2a = *g.find_node_by_label("M2 := U * dx");
  NodeId m1b = *g.find_node_by_label("M1 := A * B");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  ASSERT_TRUE(g.find_arc(m2a, a1c).has_value());
  ASSERT_TRUE(g.find_arc(m1b, a1c).has_value());

  auto res = gt3_relative_timing(g, DelayModel::typical());
  EXPECT_EQ(res.arcs_removed, 1);
  EXPECT_FALSE(g.find_arc(m2a, a1c).has_value()) << "arc 10 gone";
  EXPECT_TRUE(g.find_arc(m1b, a1c).has_value()) << "arc 11 (slower) kept";
}

TEST(Gt3, RespectsTheDelayModel) {
  // With hugely variable multiplier latency the "MUL2 always earlier"
  // argument collapses: the single M2 multiplication can outlast the
  // mul+alu+mul chain, so the arc must NOT be deleted.
  Cdfg g = diffeq_after_gt1_gt2();
  DelayModel wild;
  wild.fu_op["alu"] = {1, 1};
  wild.fu_op["mul"] = {1, 200};
  NodeId m2a = *g.find_node_by_label("M2 := U * dx");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  gt3_relative_timing(g, wild);
  EXPECT_TRUE(g.find_arc(m2a, a1c).has_value())
      << "relative-timing removal must not fire when the assumption fails";
}

TEST(Gt3, ResultStaysCorrectUnderItsDelayModel) {
  Cdfg g = diffeq_after_gt1_gt2();
  gt3_relative_timing(g, DelayModel::typical());
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 10}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  Cdfg ref = diffeq();
  auto gold = run_sequential(ref, init);
  for (unsigned seed = 1; seed <= 15; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

TEST(Gt3, NeverRemovesTheOnlyIncomingArc) {
  Cdfg g = diffeq_after_gt1_gt2();
  gt3_relative_timing(g, DelayModel::typical());
  // Every RTL node still has at least one incoming constraint.
  for (NodeId n : g.node_ids()) {
    if (g.node(n).is_control()) continue;
    EXPECT_FALSE(g.in_arcs(n).empty()) << g.node(n).label();
  }
}

TEST(Gt3, StructuralFastPathCoversSequentialSources) {
  // c -> b and a -> b where a precedes c: the arc from a is never last and
  // is removable without any timing argument.
  Cdfg g("chain");
  FuId alu = g.add_fu("A1", "alu");
  FuId mul = g.add_fu("M1", "mul");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId c = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + q")});
  NodeId b = g.add_node(NodeKind::kOperation, mul, {parse_rtl("z := y * x")});
  g.set_fu_order(alu, {a, c});
  g.set_fu_order(mul, {b});
  NodeId start = g.add_node(NodeKind::kStart, FuId::invalid());
  NodeId end = g.add_node(NodeKind::kEnd, FuId::invalid());
  g.add_arc(start, a, ArcRole::kControl);
  g.add_arc(a, c, ArcRole::kScheduling | ArcRole::kDataDep, false, "x");
  g.add_arc(a, b, ArcRole::kDataDep, false, "x");  // removable: c is later
  g.add_arc(c, b, ArcRole::kDataDep, false, "y");
  g.add_arc(b, end, ArcRole::kControl);

  auto res = gt3_relative_timing(g, DelayModel::typical());
  EXPECT_EQ(res.arcs_removed, 1);
  EXPECT_FALSE(g.find_arc(a, b).has_value());
  EXPECT_TRUE(g.find_arc(c, b).has_value());
}

TEST(Gt3, MarginBlocksTightRemovals) {
  Cdfg g = diffeq_after_gt1_gt2();
  Gt3Options opts;
  opts.margin = 100000;  // nothing can be proven with absurd margin
  auto res = gt3_relative_timing(g, DelayModel::typical(), opts);
  // The structural fast path is margin-independent, so only count the
  // timing-based removal of arc 10 as suppressed.
  NodeId m2a = *g.find_node_by_label("M2 := U * dx");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  EXPECT_TRUE(g.find_arc(m2a, a1c).has_value());
  (void)res;
}

TEST(Gt3, SkipsArcsUnderIfBlocks) {
  Cdfg g = mac_reduce();
  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  gt3_relative_timing(g, DelayModel::typical());
  std::map<std::string, std::int64_t> init{{"X", 0}, {"K", 3}, {"T", 40},
                                           {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}};
  Cdfg ref = mac_reduce();
  auto gold = run_sequential(ref, init);
  for (unsigned seed = 1; seed <= 8; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold);
  }
}

}  // namespace
}  // namespace adc
