// Phase concretization: toggle parity tracking, state splitting, ddc
// windows, conditional tracking.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/flow_table.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

TEST(FlowTable, ToggleParityDoublesAnOddRing) {
  // One toggle per ring cycle: the wire's phase alternates, so the
  // implementation needs both phases of every state.
  Xbm m("odd");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {toggle(a)}, {rise(y)});
  m.add_transition(s1, s0, {toggle(a)}, {fall(y)});
  // Two toggles per cycle: parity closes, no doubling.
  auto cm = concretize(m);
  EXPECT_EQ(cm.states.size(), 2u);

  Xbm m2("odd2");
  SignalId b = m2.add_signal("b", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId z = m2.add_signal("z", SignalKind::kOutput, SignalRole::kGlobalReady);
  StateId t0 = m2.add_state();
  m2.set_initial(t0);
  m2.add_transition(t0, t0, {toggle(b)}, {toggle(z)});
  // One toggle per cycle: the self-loop doubles into the two phases.
  auto cm2 = concretize(m2);
  EXPECT_EQ(cm2.states.size(), 2u);
  EXPECT_EQ(cm2.transitions.size(), 2u);
}

TEST(FlowTable, ConcreteValuesTrackToggleParity) {
  Xbm m("par");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kGlobalReady);
  StateId s0 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s0, {toggle(a)}, {toggle(y)});
  auto cm = concretize(m);
  ASSERT_EQ(cm.states.size(), 2u);
  std::size_t var = cm.input_var(a);
  EXPECT_NE(cm.states[0].inputs.get(var), cm.states[1].inputs.get(var));
}

TEST(FlowTable, DdcWindowMakesValueUnknownUntilConsumption) {
  Xbm m("win");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId b = m.add_signal("b", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  // b may arrive during the first burst, compulsory in the second.
  m.add_transition(s0, s1, {toggle(a), ddc(toggle(b))}, {rise(y)});
  m.add_transition(s1, s0, {toggle(b)}, {fall(y)});
  auto cm = concretize(m);
  std::size_t vb = cm.input_var(b);
  // At the mid state, b is in its window: unknown.
  bool saw_window_state = false;
  for (const auto& st : cm.states)
    if (st.inputs.get(vb) == Cube::V::kFree) saw_window_state = true;
  EXPECT_TRUE(saw_window_state);
  // Transition cubes spanning the window leave b free; endpoints pin it.
  for (const auto& t : cm.transitions) {
    EXPECT_NE(t.start.get(vb), Cube::V::kFree) << "endpoints use pre-window values";
    EXPECT_NE(t.end.get(vb), Cube::V::kFree);
  }
}

TEST(FlowTable, OutputChangesRecorded) {
  Xbm m("out");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {toggle(a)}, {rise(y)});
  m.add_transition(s1, s0, {toggle(a)}, {fall(y)});
  auto cm = concretize(m);
  ASSERT_EQ(cm.transitions.size(), 2u);
  for (const auto& t : cm.transitions) {
    ASSERT_EQ(t.output_changes.size(), 1u);
    EXPECT_EQ(cm.states[t.from].outputs[t.output_changes[0].first],
              !t.output_changes[0].second);
  }
}

TEST(FlowTable, ConditionalsPinTransitionCubes) {
  Xbm m("cond");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId c = m.add_signal("c", SignalKind::kInput, SignalRole::kConditional);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kLatch);
  StateId s0 = m.add_state();
  StateId s1 = m.add_state();
  m.set_initial(s0);
  m.add_transition(s0, s1, {toggle(a)}, {rise(y)}, {CondTerm{c, true}});
  m.add_transition(s0, s0, {toggle(a)}, {}, {CondTerm{c, false}});
  m.add_transition(s1, s0, {toggle(a)}, {fall(y)});
  auto cm = concretize(m);
  std::size_t vc = cm.input_var(c);
  int pinned = 0;
  for (const auto& t : cm.transitions)
    if (t.trans.get(vc) != Cube::V::kFree) ++pinned;
  EXPECT_GE(pinned, 2) << "sampled transitions carry the condition literal";
}

TEST(FlowTable, DiffeqControllersConcretize) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  for (auto& c : extract_controllers(g, res.plan)) {
    run_local_transforms(c);
    auto cm = concretize(c.machine, &c.bindings);
    EXPECT_GE(cm.states.size(), c.machine.state_count()) << c.machine.name();
    EXPECT_LE(cm.states.size(), 8 * c.machine.state_count())
        << c.machine.name() << ": phase splitting exploded";
    EXPECT_FALSE(cm.transitions.empty());
  }
}

TEST(FlowTable, BindingsTightenConditionalTracking) {
  // With bindings the ALU2 controller knows when C is stable, producing
  // fewer or equal concrete states and more pinned condition literals.
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  for (auto& c : extract_controllers(g, res.plan)) {
    if (g.fu(c.fu).name != "ALU2") continue;
    run_local_transforms(c);
    auto with = concretize(c.machine, &c.bindings);
    auto without = concretize(c.machine, nullptr);
    std::size_t vc_with = with.input_var(*c.machine.find_signal("c_C"));
    int pinned_with = 0, pinned_without = 0;
    for (const auto& t : with.transitions)
      if (t.start.get(vc_with) != Cube::V::kFree) ++pinned_with;
    for (const auto& t : without.transitions)
      if (t.start.get(vc_with) != Cube::V::kFree) ++pinned_without;
    EXPECT_GT(pinned_with, pinned_without);
  }
}

TEST(FlowTable, StateExplosionGuard) {
  // Pathological: many independent odd-parity wires would explode; the
  // concretizer must throw rather than hang.
  Xbm m("boom");
  StateId s = m.add_state();
  m.set_initial(s);
  std::vector<SignalId> wires;
  for (int i = 0; i < 16; ++i)
    wires.push_back(m.add_signal("w" + std::to_string(i), SignalKind::kInput,
                                 SignalRole::kGlobalReady));
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kGlobalReady);
  StateId cur = s;
  // A long chain where each step consumes one wire and leaves the rest in
  // ddc windows — every subset of arrivals becomes a distinct signature.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 16; ++i) {
      StateId next = m.add_state();
      std::vector<XbmEdge> in{toggle(wires[static_cast<std::size_t>(i)])};
      for (int j = 0; j < 16; ++j)
        if (j != i) in.push_back(ddc(toggle(wires[static_cast<std::size_t>(j)])));
      m.add_transition(cur, next, in, {toggle(y)});
      cur = next;
    }
  }
  m.add_transition(cur, s, {toggle(wires[0])}, {toggle(y)});
  EXPECT_NO_THROW({
    try {
      concretize(m);
    } catch (const std::runtime_error&) {
      // acceptable: the guard fired
    }
  });
}

}  // namespace
}  // namespace adc
