// RTL statement parsing and semantics.

#include <gtest/gtest.h>

#include "cdfg/rtl.hpp"

namespace adc {
namespace {

TEST(Rtl, ParsesBinaryAdd) {
  RtlStatement s = parse_rtl("A := Y + M1");
  EXPECT_EQ(s.dest, "A");
  EXPECT_EQ(s.op, RtlOp::kAdd);
  EXPECT_EQ(s.lhs.reg, "Y");
  ASSERT_TRUE(s.rhs.has_value());
  EXPECT_EQ(s.rhs->reg, "M1");
}

TEST(Rtl, ParsesScaledRegister) {
  // The paper's "B := 2dx + dx" — a shift-add computing 3*dx.
  RtlStatement s = parse_rtl("B := 2dx + dx");
  EXPECT_EQ(s.lhs.reg, "dx");
  EXPECT_EQ(s.lhs.scale, 2);
  EXPECT_EQ(s.rhs->reg, "dx");
  EXPECT_EQ(s.rhs->scale, 1);
}

TEST(Rtl, ParsesMove) {
  RtlStatement s = parse_rtl("X1 := X");
  EXPECT_TRUE(s.is_move());
  EXPECT_EQ(s.dest, "X1");
  EXPECT_EQ(s.lhs.reg, "X");
  EXPECT_FALSE(s.rhs.has_value());
}

TEST(Rtl, ParsesComparison) {
  RtlStatement s = parse_rtl("C := X < a");
  EXPECT_EQ(s.op, RtlOp::kLt);
  EXPECT_TRUE(is_comparison(s.op));
}

TEST(Rtl, ParsesConstants) {
  RtlStatement s = parse_rtl("n := n - 1");
  ASSERT_TRUE(s.rhs.has_value());
  EXPECT_TRUE(s.rhs->is_const());
  EXPECT_EQ(s.rhs->literal, 1);
}

TEST(Rtl, ParsesConstantLhs) {
  RtlStatement s = parse_rtl("cond := 0 < n");
  EXPECT_TRUE(s.lhs.is_const());
  EXPECT_EQ(s.lhs.literal, 0);
  EXPECT_EQ(s.rhs->reg, "n");
}

TEST(Rtl, ParsesAllOperators) {
  EXPECT_EQ(parse_rtl("a := b * c").op, RtlOp::kMul);
  EXPECT_EQ(parse_rtl("a := b / c").op, RtlOp::kDiv);
  EXPECT_EQ(parse_rtl("a := b - c").op, RtlOp::kSub);
  EXPECT_EQ(parse_rtl("a := b > c").op, RtlOp::kGt);
  EXPECT_EQ(parse_rtl("a := b == c").op, RtlOp::kEq);
  EXPECT_EQ(parse_rtl("a := b != c").op, RtlOp::kNe);
  EXPECT_EQ(parse_rtl("a := b << c").op, RtlOp::kShl);
  EXPECT_EQ(parse_rtl("a := b >> c").op, RtlOp::kShr);
}

TEST(Rtl, RoundTripsThroughToString) {
  for (const char* text :
       {"A := Y + M1", "B := 2dx + dx", "X1 := X", "C := X < a", "n := n - 1"}) {
    RtlStatement s = parse_rtl(text);
    EXPECT_EQ(parse_rtl(s.to_string()), s) << text;
  }
}

TEST(Rtl, RejectsMalformedInput) {
  EXPECT_THROW(parse_rtl(""), std::invalid_argument);
  EXPECT_THROW(parse_rtl("A = B"), std::invalid_argument);
  EXPECT_THROW(parse_rtl("A := "), std::invalid_argument);
  EXPECT_THROW(parse_rtl("A := B %% C"), std::invalid_argument);
  EXPECT_THROW(parse_rtl("A := B + C extra"), std::invalid_argument);
}

TEST(Rtl, ReadsDeduplicates) {
  RtlStatement s = parse_rtl("U := U - U");
  EXPECT_EQ(s.reads(), std::vector<std::string>{"U"});
  EXPECT_TRUE(s.reads_its_dest());
}

TEST(Rtl, ReadsSkipConstants) {
  RtlStatement s = parse_rtl("a := 3 + b");
  EXPECT_EQ(s.reads(), std::vector<std::string>{"b"});
}

TEST(Rtl, OperandEvalAppliesScale) {
  Operand o = Operand::make_reg("dx", 2);
  EXPECT_EQ(o.eval(21), 42);
  Operand c = Operand::make_const(-7);
  EXPECT_EQ(c.eval(999), -7);
}

TEST(Rtl, NegativeConstant) {
  RtlStatement s = parse_rtl("a := b + -4");
  EXPECT_EQ(s.rhs->literal, -4);
}

}  // namespace
}  // namespace adc
