// CDFG-level token simulator: firing semantics, loop/IF handling, delay
// randomization, wire discipline, and agreement with the sequential model.

#include <gtest/gtest.h>

#include "frontend/benchmarks.hpp"
#include "sim/golden.hpp"
#include "sim/token_sim.hpp"

namespace adc {
namespace {

std::map<std::string, std::int64_t> diffeq_init() {
  return {{"X", 0}, {"a", 5}, {"dx", 1}, {"U", 10}, {"Y", 3}, {"X1", 0}, {"C", 1}};
}

TEST(TokenSim, ExecuteStatementSemantics) {
  std::map<std::string, std::int64_t> regs{{"a", 7}, {"b", 3}};
  execute_statement(parse_rtl("c := a + b"), regs);
  EXPECT_EQ(regs["c"], 10);
  execute_statement(parse_rtl("c := a - b"), regs);
  EXPECT_EQ(regs["c"], 4);
  execute_statement(parse_rtl("c := a * b"), regs);
  EXPECT_EQ(regs["c"], 21);
  execute_statement(parse_rtl("c := a < b"), regs);
  EXPECT_EQ(regs["c"], 0);
  execute_statement(parse_rtl("c := b < a"), regs);
  EXPECT_EQ(regs["c"], 1);
  execute_statement(parse_rtl("c := 2a + b"), regs);
  EXPECT_EQ(regs["c"], 17);
  execute_statement(parse_rtl("c := a / 0"), regs);
  EXPECT_EQ(regs["c"], 0) << "division by zero is defined as 0";
}

TEST(TokenSim, SequentialMatchesIndependentGolden) {
  auto init = diffeq_init();
  Cdfg g = diffeq();
  auto seq = run_sequential(g, init);
  auto gold = diffeq_reference_registers(init);
  EXPECT_EQ(seq.at("X"), gold.at("X"));
  EXPECT_EQ(seq.at("Y"), gold.at("Y"));
  EXPECT_EQ(seq.at("U"), gold.at("U"));
}

TEST(TokenSim, DiffeqCompletesAndMatchesGolden) {
  Cdfg g = diffeq();
  auto init = diffeq_init();
  auto gold = run_sequential(g, init);
  for (unsigned seed = 1; seed <= 8; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
    EXPECT_EQ(r.loop_iterations, 5);
  }
}

TEST(TokenSim, ZeroIterationLoop) {
  Cdfg g = diffeq();
  auto init = diffeq_init();
  init["C"] = 0;  // condition false on entry
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.loop_iterations, 0);
  EXPECT_EQ(r.registers.at("X"), 0);
}

TEST(TokenSim, UnoptimizedHasNoIterationOverlap) {
  Cdfg g = diffeq();
  auto init = diffeq_init();
  init["a"] = 20;
  for (unsigned seed = 1; seed <= 5; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_EQ(r.max_overlap, 1) << "ENDLOOP synchronization forbids overlap";
  }
}

TEST(TokenSim, CornerDelaysAreDeterministic) {
  Cdfg g = diffeq();
  TokenSimOptions o;
  o.randomize_delays = false;
  auto r1 = run_token_sim(g, diffeq_init(), o);
  auto r2 = run_token_sim(g, diffeq_init(), o);
  EXPECT_EQ(r1.finish_time, r2.finish_time);
  o.all_min_delays = true;
  auto rmin = run_token_sim(g, diffeq_init(), o);
  EXPECT_LT(rmin.finish_time, r1.finish_time);
}

TEST(TokenSim, IfBlocksExecuteConditionally) {
  Cdfg g = mac_reduce();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"K", 3}, {"T", 40},
                                           {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}};
  auto gold = run_sequential(g, init);
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers, gold);
  EXPECT_EQ(gold.at("S"), 5) << "the conditional reduce must have fired";
}

TEST(TokenSim, GcdBySubtraction) {
  Cdfg g = gcd();
  std::map<std::string, std::int64_t> init{{"A", 12}, {"B", 18}, {"C", 1}};
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers.at("A"), 6);
  EXPECT_EQ(r.registers.at("B"), 6);
}

TEST(TokenSim, StraightLineBenchmarks) {
  std::map<std::string, std::int64_t> init{
      {"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
      {"K3", 8}, {"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}};
  for (auto make : {fir4, ewf_lite}) {
    Cdfg g = make();
    auto gold = run_sequential(g, init);
    for (unsigned seed = 1; seed <= 4; ++seed) {
      TokenSimOptions o;
      o.seed = seed;
      auto r = run_token_sim(g, init, o);
      EXPECT_TRUE(r.completed) << g.name() << ": " << r.error;
      EXPECT_EQ(r.registers, gold) << g.name();
    }
  }
}

TEST(TokenSim, DeadlockIsReportedNotHung) {
  // A node waiting on a wire nobody drives must be diagnosed.
  Cdfg g("dead");
  FuId a = g.add_fu("A", "alu");
  FuId b = g.add_fu("B", "alu");
  NodeId n1 = g.add_node(NodeKind::kOperation, a, {parse_rtl("x := p + q")});
  NodeId n2 = g.add_node(NodeKind::kOperation, b, {parse_rtl("y := x + q")});
  g.set_fu_order(a, {n1});
  g.set_fu_order(b, {n2});
  NodeId start = g.add_node(NodeKind::kStart, FuId::invalid());
  NodeId end = g.add_node(NodeKind::kEnd, FuId::invalid());
  g.add_arc(start, n1, ArcRole::kControl);
  g.add_arc(n1, n2, ArcRole::kDataDep, false, "x");
  g.add_arc(n2, end, ArcRole::kControl);
  // Circular wait: n2 needs `orphan`, which waits for END, which waits n2.
  NodeId orphan = g.add_node(NodeKind::kOperation, a, {parse_rtl("z := p + q")});
  g.add_arc(orphan, n2, ArcRole::kDataDep, false, "z");
  g.add_arc(end, orphan, ArcRole::kControl);
  auto r = run_token_sim(g, {});
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("deadlock"), std::string::npos) << r.error;
}

TEST(TokenSim, RunawayGuardTrips) {
  Cdfg g = diffeq();
  auto init = diffeq_init();
  init["a"] = 1000000;  // far more iterations than the firing budget allows
  TokenSimOptions o;
  o.max_firings = 500;
  auto r = run_token_sim(g, init, o);
  EXPECT_FALSE(r.completed);
  EXPECT_NE(r.error.find("runaway"), std::string::npos);
}

TEST(TokenSim, TimingHarnessForcesIterations) {
  Cdfg g = diffeq();
  TokenSimOptions o;
  o.forced_loop_iterations = 3;
  auto r = run_token_sim(g, {}, o);  // no initial registers at all
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.loop_iterations, 3);
}

TEST(TokenSim, RecordTimesProducesMonotonicPerNodeHistory) {
  Cdfg g = diffeq();
  TokenSimOptions o;
  o.record_times = true;
  auto r = run_token_sim(g, diffeq_init(), o);
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_FALSE(r.fire_times.empty());
  for (const auto& [node, times] : r.fire_times) {
    for (std::size_t i = 1; i < times.size(); ++i)
      EXPECT_LE(times[i - 1], times[i]) << "node " << node;
    auto cit = r.completion_times.find(node);
    ASSERT_NE(cit, r.completion_times.end());
    for (std::size_t i = 0; i < cit->second.size() && i < times.size(); ++i)
      EXPECT_LT(times[i], cit->second[i]);
  }
}

TEST(TokenSim, RandomProgramsMatchSequential) {
  RandomProgramParams p;
  for (int seed = 0; seed < 30; ++seed) {
    Cdfg g = random_program(p, static_cast<std::uint64_t>(seed));
    std::map<std::string, std::int64_t> init;
    for (int i = 0; i < p.regs; ++i) init["r" + std::to_string(i)] = 3 * i + 1;
    init["n"] = 4;
    init["cond"] = 1;
    auto gold = run_sequential(g, init);
    TokenSimOptions o;
    o.seed = static_cast<std::uint64_t>(seed) + 99;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

}  // namespace
}  // namespace adc
