// Property-based testing over randomly generated scheduled CDFGs: the
// invariants every transform must preserve, swept across seeds and sizes.

#include <gtest/gtest.h>

#include "cdfg/analysis.hpp"
#include "cdfg/validate.hpp"
#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/validate.hpp"

namespace adc {
namespace {

std::map<std::string, std::int64_t> random_init(const RandomProgramParams& p) {
  std::map<std::string, std::int64_t> init;
  for (int i = 0; i < p.regs; ++i) init["r" + std::to_string(i)] = 7 * i - 4;
  init["n"] = 5;
  init["cond"] = 1;
  return init;
}

struct Shape {
  int alus;
  int mults;
  int stmts;
  bool loop;
};

class RandomPrograms : public ::testing::TestWithParam<Shape> {};

TEST_P(RandomPrograms, GlobalPipelinePreservesSemantics) {
  Shape shape = GetParam();
  RandomProgramParams p;
  p.alus = shape.alus;
  p.mults = shape.mults;
  p.stmts = shape.stmts;
  p.with_loop = shape.loop;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Cdfg g = random_program(p, seed);
    auto init = random_init(p);
    auto gold = run_sequential(g, init);

    auto res = run_global_transforms(g);
    EXPECT_TRUE(validate(g).empty()) << "seed " << seed;
    EXPECT_TRUE(res.plan.validate(g).empty()) << "seed " << seed;

    for (std::uint64_t s = 1; s <= 3; ++s) {
      TokenSimOptions o;
      o.seed = seed * 17 + s;
      auto r = run_token_sim(g, init, o);
      EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
      EXPECT_EQ(r.registers, gold) << "seed " << seed << " sim-seed " << s;
    }
  }
}

TEST_P(RandomPrograms, ExtractionAndLtStayValid) {
  Shape shape = GetParam();
  RandomProgramParams p;
  p.alus = shape.alus;
  p.mults = shape.mults;
  p.stmts = shape.stmts;
  p.with_loop = shape.loop;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Cdfg g = random_program(p, seed);
    auto res = run_global_transforms(g);
    for (auto& c : extract_controllers(g, res.plan)) {
      ASSERT_TRUE(validate(c.machine).empty())
          << "seed " << seed << " " << c.machine.name();
      ASSERT_NO_THROW(run_local_transforms(c)) << "seed " << seed;
      EXPECT_TRUE(validate(c.machine).empty())
          << "seed " << seed << " " << c.machine.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomPrograms,
    ::testing::Values(Shape{1, 1, 6, false}, Shape{2, 1, 10, false},
                      Shape{2, 2, 12, true}, Shape{3, 2, 16, true},
                      Shape{2, 0, 8, true}, Shape{4, 2, 20, false}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      const Shape& s = info.param;
      return "a" + std::to_string(s.alus) + "m" + std::to_string(s.mults) + "s" +
             std::to_string(s.stmts) + (s.loop ? "_loop" : "_line");
    });

TEST(PropertyRandom, Gt2NeverChangesReachabilityOffsets) {
  RandomProgramParams p;
  p.stmts = 14;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Cdfg g = random_program(p, seed);
    Cdfg before = g.clone();
    gt2_remove_dominated(g);
    auto nodes = before.node_ids();
    for (std::size_t i = 0; i < nodes.size(); i += 3) {
      for (std::size_t j = 0; j < nodes.size(); j += 3) {
        if (i == j) continue;
        EXPECT_EQ(min_path_offset(before, nodes[i], nodes[j]),
                  min_path_offset(g, nodes[i], nodes[j]))
            << "seed " << seed;
      }
    }
  }
}

TEST(PropertyRandom, WireDisciplineHoldsAfterFullPipeline) {
  RandomProgramParams p;
  p.stmts = 12;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Cdfg g = random_program(p, seed);
    run_global_transforms(g);
    auto init = random_init(p);
    for (std::uint64_t s = 1; s <= 3; ++s) {
      TokenSimOptions o;
      o.seed = s;
      o.check_wire_discipline = true;
      auto r = run_token_sim(g, init, o);
      EXPECT_TRUE(r.error.find("wire discipline") == std::string::npos)
          << "seed " << seed << ": " << r.error;
    }
  }
}

TEST(PropertyRandom, OverlapNeverExceedsTwoIterations) {
  RandomProgramParams p;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Cdfg g = random_program(p, seed);
    run_global_transforms(g);
    auto init = random_init(p);
    init["n"] = 8;
    TokenSimOptions o;
    o.seed = seed + 1;
    auto r = run_token_sim(g, init, o);
    if (r.completed) {
      EXPECT_LE(r.max_overlap, 2) << "seed " << seed;
    }
  }
}

TEST(PropertyRandom, TransformsOnlyRemoveInterControllerArcs) {
  RandomProgramParams p;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Cdfg g = random_program(p, seed);
    std::size_t intra_before = 0;
    for (ArcId a : g.arc_ids())
      if (g.node(g.arc(a).src).fu == g.node(g.arc(a).dst).fu) ++intra_before;
    GlobalPipelineOptions opts;
    opts.gt4 = false;  // merging legitimately rewrites intra arcs
    run_global_transforms(g, opts);
    std::size_t intra_after = 0;
    for (ArcId a : g.arc_ids())
      if (g.node(g.arc(a).src).fu == g.node(g.arc(a).dst).fu) ++intra_after;
    EXPECT_EQ(intra_before, intra_after) << "seed " << seed;
  }
}

}  // namespace
}  // namespace adc
