// The design-space explainability stack (src/analysis/): the DSE profile
// schema round-trips and self-validates, the grid analyses (bottleneck
// ranking, Pareto frontier, suggestions) are correct and deterministic on
// synthetic stores, the serving daemon's incremental frontier agrees with
// the batch computation, differential explain attributes latency deltas,
// and the builder fills a schema-valid profile from a real flow point.

#include "analysis/profile.hpp"

#include <gtest/gtest.h>

#include "analysis/build.hpp"
#include "analysis/explain.hpp"
#include "analysis/grid.hpp"
#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "runtime/flow.hpp"

namespace adc {
namespace analysis {
namespace {

// A synthetic simulated-ok point whose books balance: per-controller
// transistors follow the area model, by_phase sums to `attributed`, and
// the attribution covers >= 95% of the cycle time.
PointProfile make_point(std::size_t index, std::size_t area_extra,
                        std::int64_t cycle) {
  PointProfile p;
  p.index = index;
  p.benchmark = "synthetic";
  p.script = "gt1; lt";
  p.status = "ok";
  p.ok = true;
  p.cycle_time = cycle;
  p.attributed = cycle;
  p.attributed_fraction = 1.0;
  p.has_attribution = true;

  AreaRow a;
  a.name = "ALU1";
  a.products = 4;
  a.literals = 10 + area_extra;
  a.state_bits = 3;
  a.outputs = 5;
  a.transistors = 2 * a.literals + 2 * a.products + 8 * a.state_bits + 4 * a.outputs;
  p.area.push_back(a);
  p.channels = 2;
  p.area_transistors = a.transistors + 6 * p.channels;

  p.by_phase = {{"request-wait", cycle / 2}, {"op", cycle - cycle / 2}};
  p.by_controller = {{"ALU1", cycle - cycle / 2}, {"(channels)", cycle / 2}};
  p.by_channel = {{"rdy_MUL1_to_ALU1", cycle / 2}};
  p.by_controller_phase = {{"ALU1/op", cycle - cycle / 2}};
  p.top_chains.push_back({"op", "ALU1", "ALU1", cycle - cycle / 2, 3});
  p.dominant = p.top_chains.front();
  p.recipe = {"gt1", "lt"};
  p.decisions = {{"gt1.sync_arc_removed", 3}, {"lt.transitions_folded", 4}};
  return p;
}

DseProfile make_profile(std::vector<PointProfile> points) {
  DseProfile prof;
  prof.tool = "test";
  prof.grid = analyze_grid(points);
  prof.points = std::move(points);
  return prof;
}

// Mutable lookup into a parsed JsonValue object (the test corrupts
// documents member by member to exercise the validator).
JsonValue* mut(JsonValue& o, const std::string& key) {
  for (auto& [k, v] : o.object)
    if (k == key) return &v;
  return nullptr;
}

// --- schema round-trip and validation --------------------------------------

TEST(DseProfile, RoundTripsThroughJson) {
  DseProfile prof = make_profile({make_point(0, 0, 100), make_point(1, 5, 80)});
  DseProfile back = parse_dse_profile(to_json(prof));
  ASSERT_EQ(back.points.size(), 2u);
  EXPECT_EQ(back.tool, "test");
  const PointProfile* p = back.find(1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->script, "gt1; lt");
  EXPECT_EQ(p->cycle_time, 80);
  EXPECT_EQ(p->area_transistors, prof.points[1].area_transistors);
  EXPECT_TRUE(p->has_attribution);
  EXPECT_EQ(p->by_phase, prof.points[1].by_phase);
  EXPECT_EQ(p->by_channel, prof.points[1].by_channel);
  EXPECT_EQ(p->recipe, prof.points[1].recipe);
  EXPECT_EQ(p->decisions, prof.points[1].decisions);
  ASSERT_EQ(back.grid.frontier.size(), prof.grid.frontier.size());
  EXPECT_EQ(back.grid.dominated.size(), prof.grid.dominated.size());
  EXPECT_EQ(back.grid.suggestions.size(), prof.grid.suggestions.size());
}

TEST(DseProfile, ValidatorAcceptsAWellFormedDocument) {
  DseProfile prof = make_profile({make_point(0, 0, 100), make_point(1, 5, 80)});
  JsonValue doc = parse_json(to_json(prof));
  EXPECT_TRUE(validate_dse_profile(doc).empty());
}

TEST(DseProfile, ParseRejectsWrongKindAndVersion) {
  DseProfile prof = make_profile({make_point(0, 0, 100)});
  JsonValue doc = parse_json(to_json(prof));
  mut(doc, "kind")->string = "adc-bench";
  EXPECT_THROW(parse_dse_profile(doc), std::runtime_error);
  EXPECT_FALSE(validate_dse_profile(doc).empty());
  mut(doc, "kind")->string = kProfileKind;
  mut(doc, "version")->number = 99;
  EXPECT_THROW(parse_dse_profile(doc), std::runtime_error);
  EXPECT_FALSE(validate_dse_profile(doc).empty());
}

TEST(DseProfile, ValidatorRederivesTheAreaModel) {
  DseProfile prof = make_profile({make_point(0, 0, 100)});
  JsonValue doc = parse_json(to_json(prof));
  JsonValue& point = mut(doc, "points")->array[0];
  JsonValue& area = *mut(point, "area");
  // A controller whose transistor count disagrees with 2l+2p+8sb+4out.
  *mut(area.object[0].second.array[0], "transistors") = [] {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = 1;
    return v;
  }();
  auto problems = validate_dse_profile(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("area model"), std::string::npos);
}

TEST(DseProfile, ValidatorCatchesSegmentSumMismatch) {
  DseProfile prof = make_profile({make_point(0, 0, 100)});
  JsonValue doc = parse_json(to_json(prof));
  JsonValue& point = mut(doc, "points")->array[0];
  mut(*mut(*mut(point, "segments"), "by_phase"), "op")->number += 7;
  auto problems = validate_dse_profile(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("by_phase"), std::string::npos);
}

TEST(DseProfile, ValidatorCatchesUnderAttributedOkPoint) {
  PointProfile p = make_point(0, 0, 100);
  p.attributed = 80;  // < 95% of cycle_time
  p.by_phase = {{"op", 80}};
  DseProfile prof = make_profile({p});
  JsonValue doc = parse_json(to_json(prof));
  auto problems = validate_dse_profile(doc);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const auto& s : problems)
    if (s.find("95%") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

TEST(DseProfile, ValidatorCatchesBrokenFrontierBooks) {
  // Point 2 is larger and slower than both others, so it is dominated.
  DseProfile prof = make_profile(
      {make_point(0, 0, 100), make_point(1, 5, 80), make_point(2, 60, 110)});
  JsonValue doc = parse_json(to_json(prof));
  JsonValue& grid = *mut(doc, "grid");
  // Point a dominated entry at an index that is not on the frontier.
  JsonValue& dominated = *mut(grid, "dominated");
  ASSERT_FALSE(dominated.array.empty());
  mut(dominated.array[0], "dominated_by")->number = 42;
  auto problems = validate_dse_profile(doc);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const auto& s : problems)
    if (s.find("not on the frontier") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

// --- grid analyses ----------------------------------------------------------

TEST(GridAnalysis, FrontierDominanceAndDominatorAnnotation) {
  // (area, cycle): 0 = (small, slow), 1 = (large, fast), 2 = dominated by
  // both, 3 = deadlocked (never a candidate).
  PointProfile p0 = make_point(0, 0, 100);
  PointProfile p1 = make_point(1, 50, 60);
  PointProfile p2 = make_point(2, 2, 110);
  PointProfile p3 = make_point(3, 0, 0);
  p3.ok = false;
  p3.status = "deadlock";
  p3.cycle_time = 0;
  GridAnalysis g = analyze_grid({p0, p1, p2, p3});
  ASSERT_EQ(g.frontier.size(), 2u);
  // Cycle-time ascending: the fast/large point first.
  EXPECT_EQ(g.frontier[0].index, 1u);
  EXPECT_EQ(g.frontier[1].index, 0u);
  ASSERT_EQ(g.dominated.size(), 1u);
  EXPECT_EQ(g.dominated[0].index, 2u);
  // p1 is faster but larger than p2, so only p0 dominates it.
  EXPECT_EQ(g.dominated[0].dominated_by, 0u);
}

TEST(GridAnalysis, BottleneckRankingSumsAcrossPointsDescending) {
  PointProfile p0 = make_point(0, 0, 100);
  PointProfile p1 = make_point(1, 5, 80);
  p1.by_channel["rdy_ALU1_to_MUL1"] = 10;
  GridAnalysis g = analyze_grid({p0, p1});
  ASSERT_GE(g.channels.size(), 2u);
  EXPECT_EQ(g.channels[0].name, "rdy_MUL1_to_ALU1");
  EXPECT_EQ(g.channels[0].ticks, 50 + 40);
  EXPECT_EQ(g.channels[0].points, 2u);
  EXPECT_EQ(g.channels[1].name, "rdy_ALU1_to_MUL1");
  EXPECT_EQ(g.channels[1].points, 1u);
  for (std::size_t i = 1; i < g.channels.size(); ++i)
    EXPECT_LE(g.channels[i].ticks, g.channels[i - 1].ticks);
}

TEST(GridAnalysis, SuggestionsAreRankedWithChannelHints) {
  GridAnalysis g = analyze_grid({make_point(0, 0, 100), make_point(1, 5, 80)});
  ASSERT_FALSE(g.suggestions.empty());
  for (std::size_t i = 0; i < g.suggestions.size(); ++i)
    EXPECT_EQ(g.suggestions[i].rank, i + 1);
  // The request channel suggestion proposes concurrency-raising GT steps.
  bool channel_hint = false;
  for (const auto& s : g.suggestions)
    if (s.kind == "channel")
      for (const auto& h : s.hints)
        if (h.rfind("gt", 0) == 0) channel_hint = true;
  EXPECT_TRUE(channel_hint);
}

TEST(GridAnalysis, DeterministicAcrossCalls) {
  std::vector<PointProfile> pts = {make_point(0, 0, 100), make_point(1, 5, 80),
                                   make_point(2, 2, 90)};
  GridAnalysis a = analyze_grid(pts);
  GridAnalysis b = analyze_grid(pts);
  ASSERT_EQ(a.frontier.size(), b.frontier.size());
  for (std::size_t i = 0; i < a.frontier.size(); ++i)
    EXPECT_EQ(a.frontier[i].index, b.frontier[i].index);
  ASSERT_EQ(a.suggestions.size(), b.suggestions.size());
  for (std::size_t i = 0; i < a.suggestions.size(); ++i)
    EXPECT_EQ(a.suggestions[i].name, b.suggestions[i].name);
}

TEST(GridAnalysis, FrontierTrackerAgreesWithBatchAnalysis) {
  std::vector<PointProfile> pts = {make_point(0, 0, 100), make_point(1, 50, 60),
                                   make_point(2, 60, 110), make_point(3, 2, 90)};
  FrontierTracker tracker;
  for (const auto& p : pts) tracker.add(p.area_transistors, p.cycle_time);
  GridAnalysis g = analyze_grid(pts);
  FrontierTracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.points, pts.size());
  EXPECT_EQ(snap.frontier_size, g.frontier.size());
  EXPECT_EQ(snap.dominated, g.dominated.size());
  EXPECT_EQ(snap.best_cycle_time, g.frontier.front().cycle_time);
  std::size_t best_area = g.frontier.front().area_transistors;
  for (const auto& f : g.frontier) best_area = std::min(best_area, f.area_transistors);
  EXPECT_EQ(snap.best_area_transistors, best_area);
}

TEST(GridAnalysis, FrontierTrackerInsertionOrderInvariant) {
  std::vector<PointProfile> pts = {make_point(0, 0, 100), make_point(1, 50, 60),
                                   make_point(2, 60, 110), make_point(3, 2, 90)};
  FrontierTracker fwd, rev;
  for (const auto& p : pts) fwd.add(p.area_transistors, p.cycle_time);
  for (auto it = pts.rbegin(); it != pts.rend(); ++it)
    rev.add(it->area_transistors, it->cycle_time);
  EXPECT_EQ(fwd.snapshot().frontier_size, rev.snapshot().frontier_size);
  EXPECT_EQ(fwd.snapshot().dominated, rev.snapshot().dominated);
  EXPECT_EQ(fwd.snapshot().best_cycle_time, rev.snapshot().best_cycle_time);
  EXPECT_EQ(fwd.snapshot().best_area_transistors,
            rev.snapshot().best_area_transistors);
}

// --- differential explain ---------------------------------------------------

TEST(Explain, AttributesChannelDeltaToDifferingGtDecisions) {
  PointProfile a = make_point(0, 0, 80);
  a.script = "gt1; lt";
  a.recipe = {"gt1", "lt"};
  PointProfile b = make_point(1, 0, 100);
  b.script = "lt";
  b.recipe = {"lt"};
  b.decisions.erase("gt1.sync_arc_removed");
  ExplainReport r = explain_points(a, b);
  EXPECT_EQ(r.cycle_delta, 20);
  EXPECT_EQ(r.only_a, std::vector<std::string>{"gt1"});
  EXPECT_TRUE(r.only_b.empty());
  ASSERT_FALSE(r.deltas.empty());
  // |delta| descending.
  for (std::size_t i = 1; i < r.deltas.size(); ++i)
    EXPECT_LE(std::abs(r.deltas[i].delta), std::abs(r.deltas[i - 1].delta));
  // The channel delta exists and the attribution names the gt step.
  bool channel_delta = false;
  for (const auto& d : r.deltas)
    if (d.kind == "channel" && d.name == "rdy_MUL1_to_ALU1") channel_delta = true;
  EXPECT_TRUE(channel_delta);
  bool names_gt = false;
  for (const auto& s : r.attribution)
    if (s.find("gt1") != std::string::npos) names_gt = true;
  EXPECT_TRUE(names_gt);
  // Renders without crashing and mentions both scripts.
  std::string table = r.to_table();
  EXPECT_NE(table.find("gt1; lt"), std::string::npos);
  JsonWriter w(true);
  write_json(w, r);
  JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.at("cycle_delta").number, 20);
}

TEST(Explain, IdenticalPointsProduceAnEmptyDiff) {
  PointProfile p = make_point(0, 0, 80);
  ExplainReport r = explain_points(p, p);
  EXPECT_EQ(r.cycle_delta, 0);
  EXPECT_TRUE(r.deltas.empty());
  EXPECT_TRUE(r.only_a.empty());
  EXPECT_TRUE(r.only_b.empty());
  EXPECT_TRUE(r.decisions.empty());
}

// --- builder on a real flow point -------------------------------------------

TEST(ProfileBuilder, RealFlowPointProducesASchemaValidProfile) {
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"), "gt1; lt");
  req.critical_path = true;
  req.provenance = true;
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(req);
  ASSERT_TRUE(p.ok) << p.error;
  DseProfile prof = build_dse_profile({p}, "test");
  JsonValue doc = parse_json(to_json(prof));
  std::vector<std::string> problems = validate_dse_profile(doc);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  ASSERT_EQ(prof.points.size(), 1u);
  const PointProfile& pp = prof.points[0];
  EXPECT_TRUE(pp.has_attribution);
  EXPECT_GE(pp.attributed_fraction, 0.95);
  EXPECT_EQ(pp.area_transistors, point_area_transistors(p));
  EXPECT_EQ(pp.recipe, (std::vector<std::string>{"gt1", "lt"}));
  EXPECT_FALSE(pp.decisions.empty());
  ASSERT_EQ(prof.grid.frontier.size(), 1u);
  EXPECT_TRUE(prof.grid.dominated.empty());
}

}  // namespace
}  // namespace analysis
}  // namespace adc
