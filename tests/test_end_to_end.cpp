// Full-flow integration: raw RTL program -> scheduler -> global transforms
// -> extraction -> local transforms -> logic synthesis -> gate-level
// simulation, all stages checked.

#include <gtest/gtest.h>

#include "cdfg/validate.hpp"
#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_sim.hpp"
#include "sim/golden.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/validate.hpp"

namespace adc {
namespace {

TEST(EndToEnd, DiffeqFullFlow) {
  // 1. Front end.
  Cdfg g = diffeq();
  ASSERT_TRUE(validate(g).empty());
  std::size_t arcs_before = g.live_arc_count();

  // 2. Global transforms.
  auto gres = run_global_transforms(g);
  ASSERT_TRUE(validate(g).empty());
  EXPECT_LT(g.live_arc_count(), arcs_before);
  EXPECT_EQ(gres.plan.count_controller_channels(), 5u);

  // 3. Extraction + local transforms.
  std::vector<ControllerInstance> instances;
  std::size_t total_states = 0;
  for (auto& c : extract_controllers(g, gres.plan)) {
    ASSERT_TRUE(validate(c.machine).empty());
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    ASSERT_TRUE(validate(c.machine).empty());
    total_states += c.machine.state_count();
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  EXPECT_LE(total_states, 30u) << "paper row 3 totals 28 states across 4 machines";

  // 4. Logic synthesis.
  for (const auto& inst : instances) {
    auto lr = synthesize_logic(inst.controller);
    EXPECT_TRUE(lr.feasible()) << inst.controller.machine.name();
  }

  // 5. Gate-level simulation against the independent golden model.
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = diffeq_reference_registers(init);
  for (unsigned seed = 1; seed <= 6; ++seed) {
    EventSimOptions o;
    o.seed = seed;
    auto r = run_event_sim(g, gres.plan, instances, init, o);
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers.at("X"), gold.at("X"));
    EXPECT_EQ(r.registers.at("Y"), gold.at("Y"));
    EXPECT_EQ(r.registers.at("U"), gold.at("U"));
  }
}

TEST(EndToEnd, HlsFrontEndToGateLevel) {
  // From raw statements through the scheduler substrate to gates.
  HlsProgram p;
  p.name = "hls_e2e";
  p.loop_cond = "C";
  for (const char* t : {"M1 := U * X1", "A := Y + M1", "U := U - A", "X := X + dx",
                        "Y := Y + A", "X1 := X", "C := X < a"})
    p.loop_body.push_back(parse_rtl(t));
  Cdfg g = schedule_and_bind(p, Resources{2, 1, 1, 2});
  ASSERT_TRUE(validate(g).empty());

  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 5}, {"dx", 1},
                                           {"U", 9},  {"Y", 2}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(g, init);

  auto gres = run_global_transforms(g);
  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, gres.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  auto r = run_event_sim(g, gres.plan, instances, init, EventSimOptions{});
  ASSERT_TRUE(r.completed) << r.error;
  for (const auto& [reg, v] : gold) {
    if (r.registers.count(reg)) {
      EXPECT_EQ(r.registers.at(reg), v) << reg;
    }
  }
}

TEST(EndToEnd, TokenAndEventSimulatorsAgree) {
  // Two independently-built simulators at different abstraction levels must
  // compute identical results for the same transformed system.
  Cdfg g = diffeq();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 7}, {"dx", 1},
                                           {"U", 4},  {"Y", 2}, {"X1", 0}, {"C", 1}};
  auto gres = run_global_transforms(g);
  auto token = run_token_sim(g, init);
  ASSERT_TRUE(token.completed) << token.error;

  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, gres.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  auto event = run_event_sim(g, gres.plan, instances, init, EventSimOptions{});
  ASSERT_TRUE(event.completed) << event.error;
  for (const char* reg : {"X", "Y", "U", "M1", "M2", "A", "B", "C", "X1"})
    EXPECT_EQ(event.registers.at(reg), token.registers.at(reg)) << reg;
}

TEST(EndToEnd, AblationMatrixAllCorrect) {
  // Every combination of GT on/off and LT on/off must produce a working
  // system — the transforms are independent safety-preserving layers.
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 5}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = diffeq_reference_registers(init);
  for (bool gt : {false, true}) {
    for (bool lt : {false, true}) {
      Cdfg g = diffeq();
      ChannelPlan plan;
      if (gt) {
        auto res = run_global_transforms(g);
        plan = std::move(res.plan);
      } else {
        plan = ChannelPlan::derive(g);
      }
      std::vector<ControllerInstance> instances;
      for (auto& c : extract_controllers(g, plan)) {
        ControllerInstance inst;
        if (lt) inst.shared_signals = run_local_transforms(c).shared_signals;
        inst.controller = std::move(c);
        instances.push_back(std::move(inst));
      }
      auto r = run_event_sim(g, plan, instances, init, EventSimOptions{});
      ASSERT_TRUE(r.completed) << "gt=" << gt << " lt=" << lt << ": " << r.error;
      EXPECT_EQ(r.registers.at("U"), gold.at("U")) << "gt=" << gt << " lt=" << lt;
    }
  }
}

}  // namespace
}  // namespace adc
