// GT2 removal of dominated constraints (§3.2).

#include <gtest/gtest.h>

#include "cdfg/analysis.hpp"
#include "frontend/benchmarks.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"

namespace adc {
namespace {

TEST(Gt2, RemovesThePapersArc5) {
  // M1:=U*X1 -> U:=U-M1 is implied by M1:=U*X1 -> A:=Y+M1 -> U:=U-M1.
  Cdfg g = diffeq();
  NodeId m1a = *g.find_node_by_label("M1 := U * X1");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  ASSERT_TRUE(g.find_arc(m1a, a1c).has_value());
  gt2_remove_dominated(g);
  EXPECT_FALSE(g.find_arc(m1a, a1c).has_value());
}

TEST(Gt2, KeepsNonDominatedArcs) {
  Cdfg g = diffeq();
  gt2_remove_dominated(g);
  auto has = [&g](const char* s, const char* d) {
    return g.find_arc(*g.find_node_by_label(s), *g.find_node_by_label(d)).has_value();
  };
  EXPECT_TRUE(has("M1 := U * X1", "A := Y + M1"));
  EXPECT_TRUE(has("A := Y + M1", "M1 := A * B"));
  EXPECT_TRUE(has("M1 := A * B", "U := U - M1"));
}

TEST(Gt2, NoRemainingArcIsDominated) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    gt2_remove_dominated(g);
    for (ArcId aid : g.arc_ids()) {
      const Arc& a = g.arc(aid);
      if (g.node(a.src).fu == g.node(a.dst).fu) continue;
      EXPECT_FALSE(is_dominated(g, aid))
          << g.name() << ": " << g.node(a.src).label() << " -> "
          << g.node(a.dst).label();
    }
  }
}

TEST(Gt2, ClosurePreserved) {
  // Removing dominated arcs must not change reachability (any offset).
  Cdfg g = diffeq();
  Cdfg before = g.clone();
  gt2_remove_dominated(g);
  for (NodeId s : before.node_ids()) {
    for (NodeId d : before.node_ids()) {
      if (s == d) continue;
      auto then = min_path_offset(before, s, d);
      auto now = min_path_offset(g, s, d);
      EXPECT_EQ(then.has_value(), now.has_value());
      if (then && now) {
        EXPECT_EQ(*then, *now);
      }
    }
  }
}

TEST(Gt2, IntraControllerArcsUntouchedByDefault) {
  Cdfg g = diffeq();
  std::size_t intra_before = 0;
  for (ArcId a : g.arc_ids())
    if (g.node(g.arc(a).src).fu == g.node(g.arc(a).dst).fu) ++intra_before;
  gt2_remove_dominated(g);
  std::size_t intra_after = 0;
  for (ArcId a : g.arc_ids())
    if (g.node(g.arc(a).src).fu == g.node(g.arc(a).dst).fu) ++intra_after;
  EXPECT_EQ(intra_before, intra_after);
}

TEST(Gt2, AllArcsModeRemovesMore) {
  Cdfg g1 = diffeq();
  gt2_remove_dominated(g1);
  Cdfg g2 = diffeq();
  Gt2Options all;
  all.only_inter_controller = false;
  gt2_remove_dominated(g2, all);
  EXPECT_GE(g1.live_arc_count(), g2.live_arc_count());
}

TEST(Gt2, SemanticsPreservedOnRandomPrograms) {
  RandomProgramParams p;
  p.stmts = 14;
  for (int seed = 0; seed < 20; ++seed) {
    Cdfg g = random_program(p, static_cast<std::uint64_t>(seed));
    std::map<std::string, std::int64_t> init;
    for (int i = 0; i < p.regs; ++i) init["r" + std::to_string(i)] = 2 * i + 1;
    init["n"] = 3;
    init["cond"] = 1;
    auto gold = run_sequential(g, init);
    gt2_remove_dominated(g);
    TokenSimOptions o;
    o.seed = static_cast<std::uint64_t>(seed) + 5;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

TEST(Gt2, Fixpoint) {
  Cdfg g = diffeq();
  gt2_remove_dominated(g);
  auto res2 = gt2_remove_dominated(g);
  EXPECT_EQ(res2.arcs_removed, 0);
}

TEST(Gt2, AfterGt1TheDominatedSetIsDifferent) {
  // GT1 removes the ENDLOOP synchronization, which changes what GT2 can
  // prove: B := 2dx + dx -> M1 := A * B becomes removable.
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  NodeId a1a = *g.find_node_by_label("B := 2dx + dx");
  NodeId m1b = *g.find_node_by_label("M1 := A * B");
  ASSERT_TRUE(g.find_arc(a1a, m1b).has_value());
  gt2_remove_dominated(g);
  EXPECT_FALSE(g.find_arc(a1a, m1b).has_value());
}

}  // namespace
}  // namespace adc
