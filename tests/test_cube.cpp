// Cube algebra, including parameterized sweeps over widths crossing the
// 64-bit word boundary.

#include <gtest/gtest.h>

#include "logic/cube.hpp"

namespace adc {
namespace {

TEST(Cube, UniversalCube) {
  Cube c(5);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.literal_count(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(c.get(i), Cube::V::kFree);
  EXPECT_EQ(c.to_string(), "-----");
}

TEST(Cube, SetGetRoundTrip) {
  Cube c(4);
  c.set(0, Cube::V::kZero);
  c.set(1, Cube::V::kOne);
  c.set(3, Cube::V::kOne);
  EXPECT_EQ(c.to_string(), "01-1");
  EXPECT_EQ(c.literal_count(), 3u);
  EXPECT_EQ(c.get(2), Cube::V::kFree);
}

TEST(Cube, Containment) {
  Cube wide(3);           // ---
  Cube narrow(3);
  narrow.set(0, Cube::V::kOne);  // 1--
  Cube point(3);
  point.set(0, Cube::V::kOne);
  point.set(1, Cube::V::kZero);
  point.set(2, Cube::V::kOne);   // 101
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_TRUE(narrow.contains(point));
  EXPECT_FALSE(point.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(point.contains(point));
}

TEST(Cube, IntersectionAndValidity) {
  Cube a(3);
  a.set(0, Cube::V::kOne);  // 1--
  Cube b(3);
  b.set(0, Cube::V::kZero);  // 0--
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.intersect(b).valid());
  Cube c(3);
  c.set(1, Cube::V::kOne);  // -1-
  EXPECT_TRUE(a.intersects(c));
  EXPECT_EQ(a.intersect(c).to_string(), "11-");
}

TEST(Cube, Supercube) {
  Cube a(3);
  a.set(0, Cube::V::kOne);
  a.set(1, Cube::V::kZero);
  Cube b(3);
  b.set(0, Cube::V::kOne);
  b.set(1, Cube::V::kOne);
  EXPECT_EQ(a.supercube(b).to_string(), "1--");
}

TEST(Cube, WithDoesNotMutate) {
  Cube a(2);
  Cube b = a.with(0, Cube::V::kOne);
  EXPECT_EQ(a.get(0), Cube::V::kFree);
  EXPECT_EQ(b.get(0), Cube::V::kOne);
}

TEST(Cube, OrderingIsStrictWeak) {
  Cube a(2), b(2);
  b.set(0, Cube::V::kOne);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

class CubeWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CubeWidth, WordBoundarySafety) {
  std::size_t n = GetParam();
  Cube c(n);
  EXPECT_TRUE(c.valid());
  // Pin every third variable, check integrity across word boundaries.
  for (std::size_t i = 0; i < n; i += 3) c.set(i, i % 2 ? Cube::V::kOne : Cube::V::kZero);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 0)
      EXPECT_EQ(c.get(i), i % 2 ? Cube::V::kOne : Cube::V::kZero) << "var " << i;
    else
      EXPECT_EQ(c.get(i), Cube::V::kFree) << "var " << i;
  }
  EXPECT_EQ(c.literal_count(), (n + 2) / 3);
  // A point inside c intersects; flipping one pinned var breaks containment.
  Cube p = c;
  for (std::size_t i = 0; i < n; ++i)
    if (p.get(i) == Cube::V::kFree) p.set(i, Cube::V::kZero);
  EXPECT_TRUE(c.contains(p));
  if (n >= 1) {
    Cube q = p.with(0, Cube::V::kOne);  // var 0 was pinned to 0
    EXPECT_FALSE(c.contains(q));
    EXPECT_FALSE(c.intersects(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CubeWidth,
                         ::testing::Values(1, 7, 63, 64, 65, 100, 127, 128, 130));

}  // namespace
}  // namespace adc
