// Cube algebra, including parameterized sweeps over widths crossing the
// 64-bit word boundary.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <utility>
#include <vector>

#include "logic/cube.hpp"

namespace adc {
namespace {

TEST(Cube, UniversalCube) {
  Cube c(5);
  EXPECT_TRUE(c.valid());
  EXPECT_EQ(c.literal_count(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(c.get(i), Cube::V::kFree);
  EXPECT_EQ(c.to_string(), "-----");
}

TEST(Cube, SetGetRoundTrip) {
  Cube c(4);
  c.set(0, Cube::V::kZero);
  c.set(1, Cube::V::kOne);
  c.set(3, Cube::V::kOne);
  EXPECT_EQ(c.to_string(), "01-1");
  EXPECT_EQ(c.literal_count(), 3u);
  EXPECT_EQ(c.get(2), Cube::V::kFree);
}

TEST(Cube, Containment) {
  Cube wide(3);           // ---
  Cube narrow(3);
  narrow.set(0, Cube::V::kOne);  // 1--
  Cube point(3);
  point.set(0, Cube::V::kOne);
  point.set(1, Cube::V::kZero);
  point.set(2, Cube::V::kOne);   // 101
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_TRUE(narrow.contains(point));
  EXPECT_FALSE(point.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(point.contains(point));
}

TEST(Cube, IntersectionAndValidity) {
  Cube a(3);
  a.set(0, Cube::V::kOne);  // 1--
  Cube b(3);
  b.set(0, Cube::V::kZero);  // 0--
  EXPECT_FALSE(a.intersects(b));
  EXPECT_FALSE(a.intersect(b).valid());
  Cube c(3);
  c.set(1, Cube::V::kOne);  // -1-
  EXPECT_TRUE(a.intersects(c));
  EXPECT_EQ(a.intersect(c).to_string(), "11-");
}

TEST(Cube, Supercube) {
  Cube a(3);
  a.set(0, Cube::V::kOne);
  a.set(1, Cube::V::kZero);
  Cube b(3);
  b.set(0, Cube::V::kOne);
  b.set(1, Cube::V::kOne);
  EXPECT_EQ(a.supercube(b).to_string(), "1--");
}

TEST(Cube, WithDoesNotMutate) {
  Cube a(2);
  Cube b = a.with(0, Cube::V::kOne);
  EXPECT_EQ(a.get(0), Cube::V::kFree);
  EXPECT_EQ(b.get(0), Cube::V::kOne);
}

TEST(Cube, OrderingIsStrictWeak) {
  Cube a(2), b(2);
  b.set(0, Cube::V::kOne);
  EXPECT_TRUE(a < b || b < a);
  EXPECT_FALSE(a < a);
}

class CubeWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CubeWidth, WordBoundarySafety) {
  std::size_t n = GetParam();
  Cube c(n);
  EXPECT_TRUE(c.valid());
  // Pin every third variable, check integrity across word boundaries.
  for (std::size_t i = 0; i < n; i += 3) c.set(i, i % 2 ? Cube::V::kOne : Cube::V::kZero);
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 3 == 0)
      EXPECT_EQ(c.get(i), i % 2 ? Cube::V::kOne : Cube::V::kZero) << "var " << i;
    else
      EXPECT_EQ(c.get(i), Cube::V::kFree) << "var " << i;
  }
  EXPECT_EQ(c.literal_count(), (n + 2) / 3);
  // A point inside c intersects; flipping one pinned var breaks containment.
  Cube p = c;
  for (std::size_t i = 0; i < n; ++i)
    if (p.get(i) == Cube::V::kFree) p.set(i, Cube::V::kZero);
  EXPECT_TRUE(c.contains(p));
  if (n >= 1) {
    Cube q = p.with(0, Cube::V::kOne);  // var 0 was pinned to 0
    EXPECT_FALSE(c.contains(q));
    EXPECT_FALSE(c.intersects(q));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CubeWidth,
                         ::testing::Values(1, 7, 63, 64, 65, 100, 127, 128, 130));

// --- differential property tests ------------------------------------------
// A naive per-variable reference model pitted against the word-parallel
// kernels on randomized cubes.  Widths straddle both the word boundary
// (63/64/65) and the inline-storage boundary (128/129).

struct RefCube {
  std::vector<Cube::V> v;

  static RefCube from(const Cube& c) {
    RefCube r;
    r.v.resize(c.var_count());
    for (std::size_t i = 0; i < c.var_count(); ++i) r.v[i] = c.get(i);
    return r;
  }
  static bool allows0(Cube::V x) { return x == Cube::V::kZero || x == Cube::V::kFree; }
  static bool allows1(Cube::V x) { return x == Cube::V::kOne || x == Cube::V::kFree; }

  bool valid() const {
    for (auto x : v)
      if (x == Cube::V::kEmpty) return false;
    return true;
  }
  std::size_t literal_count() const {
    std::size_t n = 0;
    for (auto x : v) n += (x == Cube::V::kZero || x == Cube::V::kOne);
    return n;
  }
  bool contains(const RefCube& o) const {
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (allows0(o.v[i]) && !allows0(v[i])) return false;
      if (allows1(o.v[i]) && !allows1(v[i])) return false;
    }
    return true;
  }
  bool intersects(const RefCube& o) const {
    for (std::size_t i = 0; i < v.size(); ++i)
      if (!(allows0(v[i]) && allows0(o.v[i])) && !(allows1(v[i]) && allows1(o.v[i])))
        return false;
    return true;
  }
  RefCube intersect(const RefCube& o) const {
    RefCube r;
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool c0 = allows0(v[i]) && allows0(o.v[i]);
      bool c1 = allows1(v[i]) && allows1(o.v[i]);
      r.v.push_back(c0 && c1 ? Cube::V::kFree
                             : c0 ? Cube::V::kZero
                                  : c1 ? Cube::V::kOne : Cube::V::kEmpty);
    }
    return r;
  }
  RefCube supercube(const RefCube& o) const {
    RefCube r;
    for (std::size_t i = 0; i < v.size(); ++i) {
      bool c0 = allows0(v[i]) || allows0(o.v[i]);
      bool c1 = allows1(v[i]) || allows1(o.v[i]);
      r.v.push_back(c0 && c1 ? Cube::V::kFree
                             : c0 ? Cube::V::kZero
                                  : c1 ? Cube::V::kOne : Cube::V::kEmpty);
    }
    return r;
  }
  // The canonical order: can0 mask words ascending, then can1 — rebuilt
  // here bit by bit, independent of the kernel's memcmp-style loop.
  std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>> masks() const {
    std::size_t words = (v.size() + 63) / 64;
    std::vector<std::uint64_t> can0(words, 0), can1(words, 0);
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (allows0(v[i])) can0[i / 64] |= std::uint64_t{1} << (i % 64);
      if (allows1(v[i])) can1[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    return {can0, can1};
  }
  bool less(const RefCube& o) const {
    auto a = masks(), b = o.masks();
    if (a.first != b.first) return a.first < b.first;
    return a.second < b.second;
  }
  bool equal(const RefCube& o) const { return v == o.v; }
};

class CubeDifferential : public ::testing::TestWithParam<std::size_t> {
 protected:
  // Random cube biased toward overlap so intersects()/contains() exercise
  // both outcomes (an unbiased pair of wide cubes almost always meets).
  static Cube random_cube(std::size_t n, std::mt19937& rng) {
    Cube c(n);
    std::uniform_int_distribution<int> pick(0, 5);
    for (std::size_t i = 0; i < n; ++i) {
      switch (pick(rng)) {
        case 0: c.set(i, Cube::V::kZero); break;
        case 1: c.set(i, Cube::V::kOne); break;
        default: break;  // leave free
      }
    }
    return c;
  }
};

TEST_P(CubeDifferential, KernelsMatchNaiveReference) {
  const std::size_t n = GetParam();
  std::mt19937 rng(0xadc0de + static_cast<unsigned>(n));
  for (int iter = 0; iter < 200; ++iter) {
    Cube a = random_cube(n, rng);
    Cube b = random_cube(n, rng);
    RefCube ra = RefCube::from(a), rb = RefCube::from(b);

    EXPECT_EQ(a.valid(), ra.valid());
    EXPECT_EQ(a.literal_count(), ra.literal_count());
    EXPECT_EQ(a.contains(b), ra.contains(rb));
    EXPECT_EQ(b.contains(a), rb.contains(ra));
    EXPECT_EQ(a.intersects(b), ra.intersects(rb));
    EXPECT_EQ(a == b, ra.equal(rb));
    EXPECT_EQ(a < b, ra.less(rb));
    EXPECT_EQ(b < a, rb.less(ra));

    EXPECT_TRUE(RefCube::from(a.intersect(b)).equal(ra.intersect(rb)));
    EXPECT_TRUE(RefCube::from(a.supercube(b)).equal(ra.supercube(rb)));

    // In-place variants match the value-returning ones.
    Cube ai = a;
    ai.intersect_with(b);
    EXPECT_TRUE(ai == a.intersect(b));
    Cube as = a;
    as.supercube_with(b);
    EXPECT_TRUE(as == a.supercube(b));

    // Algebraic identities.
    EXPECT_TRUE(a.supercube(b).contains(a));
    EXPECT_TRUE(a.supercube(b).contains(b));
    if (a.intersect(b).valid()) {
      EXPECT_TRUE(a.intersects(b));
      EXPECT_TRUE(a.contains(a.intersect(b)));
    }
  }
}

TEST_P(CubeDifferential, HashEqualityAndCopySemantics) {
  const std::size_t n = GetParam();
  std::mt19937 rng(0xbeef + static_cast<unsigned>(n));
  for (int iter = 0; iter < 100; ++iter) {
    Cube a = random_cube(n, rng);
    Cube copy = a;
    EXPECT_TRUE(copy == a);
    EXPECT_EQ(copy.hash(), a.hash());
    Cube moved = std::move(copy);
    EXPECT_TRUE(moved == a);
    // Mutating the copy never aliases the original (heap path included).
    if (n > 0) {
      Cube mutant = a;
      mutant.set(n - 1, a.get(n - 1) == Cube::V::kZero ? Cube::V::kOne
                                                       : Cube::V::kZero);
      EXPECT_FALSE(mutant == a);
      EXPECT_TRUE(moved == a);
    }
  }
}

TEST_P(CubeDifferential, CubeSetMatchesStdSet) {
  const std::size_t n = GetParam();
  std::mt19937 rng(0xf00d + static_cast<unsigned>(n));
  CubeSet pool;
  std::set<Cube> ref;
  for (int iter = 0; iter < 300; ++iter) {
    Cube c = random_cube(n, rng);
    EXPECT_EQ(pool.insert(c), ref.insert(c).second);
  }
  EXPECT_EQ(pool.size(), ref.size());
  std::vector<Cube> sorted = pool.sorted();
  ASSERT_EQ(sorted.size(), ref.size());
  std::size_t i = 0;
  for (const auto& c : ref) EXPECT_TRUE(sorted[i++] == c);
}

INSTANTIATE_TEST_SUITE_P(Widths, CubeDifferential,
                         ::testing::Values(1, 5, 63, 64, 65, 127, 128, 129, 200));

}  // namespace
}  // namespace adc
