// ProgramBuilder and automatic constraint-arc generation (§2.1 rules),
// checked in detail against the paper's DIFFEQ description.

#include <gtest/gtest.h>

#include "cdfg/analysis.hpp"
#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/builder.hpp"

namespace adc {
namespace {

bool arc_between(const Cdfg& g, const char* src, const char* dst) {
  auto s = g.find_node_by_label(src);
  auto d = g.find_node_by_label(dst);
  if (!s || !d) return false;
  return g.find_arc(*s, *d).has_value();
}

std::size_t inter_controller_arcs(const Cdfg& g) {
  std::size_t n = 0;
  for (ArcId a : g.arc_ids())
    if (g.node(g.arc(a).src).fu != g.node(g.arc(a).dst).fu) ++n;
  return n;
}

TEST(Frontend, DiffeqHasPaperStructure) {
  Cdfg g = diffeq();
  EXPECT_EQ(g.fu_count(), 4u);
  // 10 RTL nodes + LOOP + ENDLOOP + START + END.
  EXPECT_EQ(g.live_node_count(), 14u);
  EXPECT_TRUE(validate(g).empty());
}

TEST(Frontend, DiffeqChannelCountMatchesPaper) {
  // Paper Figure 12, row "unoptimized": 17 communication channels.
  Cdfg g = diffeq();
  EXPECT_EQ(inter_controller_arcs(g), 17u);
}

TEST(Frontend, DiffeqFuSchedulesMatchPaperColumns) {
  Cdfg g = diffeq();
  auto labels = [&g](const char* fu) {
    std::vector<std::string> out;
    for (NodeId n : g.fu_order(*g.find_fu(fu))) out.push_back(g.node(n).label());
    return out;
  };
  EXPECT_EQ(labels("ALU1"),
            (std::vector<std::string>{"B := 2dx + dx", "A := Y + M1", "U := U - M1"}));
  EXPECT_EQ(labels("MUL1"), (std::vector<std::string>{"M1 := U * X1", "M1 := A * B"}));
  EXPECT_EQ(labels("MUL2"), (std::vector<std::string>{"M2 := U * dx"}));
  EXPECT_EQ(labels("ALU2"),
            (std::vector<std::string>{"LOOP", "X := X + dx", "Y := Y + M2", "X1 := X",
                                      "C := X < a", "ENDLOOP"}));
}

TEST(Frontend, DataDependencyArcsOfPaperExample) {
  // "(M1 := U * X1, A := Y + M1) and (A := Y + M1, M1 := A * B) illustrate
  // the data dependencies incident to the node A := Y + M1."
  Cdfg g = diffeq();
  EXPECT_TRUE(arc_between(g, "M1 := U * X1", "A := Y + M1"));
  EXPECT_TRUE(arc_between(g, "A := Y + M1", "M1 := A * B"));
}

TEST(Frontend, RegisterAllocationArcOfPaperExample) {
  // "(M1 := U * X1, U := U - M1) is a register allocation constraint arc
  // with respect to U."
  Cdfg g = diffeq();
  NodeId src = *g.find_node_by_label("M1 := U * X1");
  NodeId dst = *g.find_node_by_label("U := U - M1");
  auto arc = g.find_arc(src, dst);
  ASSERT_TRUE(arc.has_value());
  EXPECT_TRUE(has_role(g.arc(*arc).roles, ArcRole::kRegAlloc));
  const auto& vars = g.arc(*arc).vars;
  EXPECT_NE(std::find(vars.begin(), vars.end(), "U"), vars.end());
}

TEST(Frontend, EndloopSynchronizesEveryFu) {
  // Figure 1: the last node of each FU is synchronized with ENDLOOP.
  Cdfg g = diffeq();
  EXPECT_TRUE(arc_between(g, "U := U - M1", "ENDLOOP"));
  EXPECT_TRUE(arc_between(g, "M1 := A * B", "ENDLOOP"));
  EXPECT_TRUE(arc_between(g, "M2 := U * dx", "ENDLOOP"));
  EXPECT_TRUE(arc_between(g, "C := X < a", "ENDLOOP"));
}

TEST(Frontend, LoopBroadcastsToFirstNodeOfEveryFu) {
  Cdfg g = diffeq();
  EXPECT_TRUE(arc_between(g, "LOOP", "B := 2dx + dx"));
  EXPECT_TRUE(arc_between(g, "LOOP", "M1 := U * X1"));
  EXPECT_TRUE(arc_between(g, "LOOP", "M2 := U * dx"));
  EXPECT_TRUE(arc_between(g, "LOOP", "X := X + dx"));
}

TEST(Frontend, EnvironmentArcs) {
  Cdfg g = diffeq();
  EXPECT_TRUE(arc_between(g, "START", "LOOP"));
  EXPECT_TRUE(arc_between(g, "LOOP", "END"));
}

TEST(Frontend, ReadersOfOldValuePrecedeOverwrite) {
  // Y is read by A := Y + M1 before being overwritten by Y := Y + M2.
  Cdfg g = diffeq();
  NodeId reader = *g.find_node_by_label("A := Y + M1");
  NodeId writer = *g.find_node_by_label("Y := Y + M2");
  auto arc = g.find_arc(reader, writer);
  ASSERT_TRUE(arc.has_value());
  EXPECT_TRUE(has_role(g.arc(*arc).roles, ArcRole::kRegAlloc));
}

TEST(Frontend, SchedulingArcsAlongEachColumn) {
  Cdfg g = diffeq();
  EXPECT_TRUE(arc_between(g, "B := 2dx + dx", "A := Y + M1"));
  EXPECT_TRUE(arc_between(g, "A := Y + M1", "U := U - M1"));
  EXPECT_TRUE(arc_between(g, "M1 := U * X1", "M1 := A * B"));
}

TEST(Frontend, NoBackwardArcsBeforeGt1) {
  Cdfg g = diffeq();
  for (ArcId a : g.arc_ids()) EXPECT_FALSE(g.arc(a).backward);
}

TEST(Frontend, IfBlockDataArcsAttachAtBoundaries) {
  Cdfg g = mac_reduce();
  // The value written inside the IF must be awaited at the ENDIF, and the
  // condition is consumed at the IF root.
  NodeId ifn = *g.find_unique(NodeKind::kIf);
  NodeId endif = *g.find_unique(NodeKind::kEndIf);
  NodeId dprod = *g.find_node_by_label("D := S > T");
  EXPECT_TRUE(g.find_arc(dprod, ifn).has_value());
  // S is read after the loop body via the next iteration; within the body
  // the ENDIF releases the ALU2 condition recomputation ordering.
  EXPECT_FALSE(g.in_arcs(endif).empty());
}

TEST(Frontend, BuilderRejectsMisuse) {
  ProgramBuilder b("bad");
  FuId alu = b.fu("ALU1", "alu");
  EXPECT_THROW(b.fu("ALU1", "alu"), std::invalid_argument);
  b.begin_loop(alu, "c");
  EXPECT_THROW(b.end_if(), std::logic_error);
  EXPECT_THROW(b.finish(), std::logic_error);  // unclosed loop
}

TEST(Frontend, BuilderCannotBeReusedAfterFinish) {
  ProgramBuilder b("once");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "x := a + b");
  b.finish();
  EXPECT_THROW(b.stmt(alu, "y := x + b"), std::logic_error);
}

TEST(Frontend, StraightLineProgramsHaveStartEndFanout) {
  Cdfg g = fir4();
  NodeId start = *g.find_unique(NodeKind::kStart);
  NodeId end = *g.find_unique(NodeKind::kEnd);
  // One entry arc per FU used at top level and one exit arc per FU.
  EXPECT_EQ(g.out_arcs(start).size(), 4u);
  EXPECT_EQ(g.in_arcs(end).size(), 4u);
}

TEST(Frontend, AllBenchmarksValidate) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    EXPECT_TRUE(validate(g).empty()) << g.name();
  }
}

TEST(Frontend, RandomProgramsValidate) {
  for (int seed = 0; seed < 25; ++seed) {
    Cdfg g = random_program(RandomProgramParams{}, static_cast<std::uint64_t>(seed));
    EXPECT_TRUE(validate(g).empty()) << "seed " << seed;
  }
}

TEST(Frontend, RandomStraightLineProgramsValidate) {
  RandomProgramParams p;
  p.with_loop = false;
  for (int seed = 0; seed < 10; ++seed) {
    Cdfg g = random_program(p, static_cast<std::uint64_t>(seed));
    EXPECT_TRUE(validate(g).empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace adc
