// Controller extraction (§4): fragment structure, ring assembly, the
// Figure 11 micro-operation protocol, back-annotation, and the paper's
// Figure 12 state counts.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/print.hpp"
#include "xbm/validate.hpp"

namespace adc {
namespace {

const ExtractedController& by_name(const std::vector<ExtractedController>& cs,
                                   const Cdfg& g, const char* name) {
  for (const auto& c : cs)
    if (g.fu(c.fu).name == name) return c;
  throw std::runtime_error("controller not found");
}

TEST(Extract, AllControllersValidate) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    auto plan = ChannelPlan::derive(g);
    for (auto& c : extract_controllers(g, plan))
      EXPECT_TRUE(validate(c.machine).empty()) << g.name() << "/" << c.machine.name();
  }
}

TEST(Extract, OptimizedControllersValidate) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    auto res = run_global_transforms(g);
    for (auto& c : extract_controllers(g, res.plan))
      EXPECT_TRUE(validate(c.machine).empty()) << g.name() << "/" << c.machine.name();
  }
}

TEST(Extract, UnoptimizedDiffeqStateCountsNearPaper) {
  // Paper Figure 12, row "unoptimized": 26/29 45/52 21/24 12/14.  Our
  // sequential expansion reproduces the shape: ALU2 largest, MUL2 smallest.
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  auto states = [&](const char* n) { return by_name(cs, g, n).machine.state_count(); };
  EXPECT_EQ(states("ALU1"), 26u);
  EXPECT_GE(states("ALU2"), 28u);
  EXPECT_GE(states("MUL1"), 12u);
  EXPECT_GE(states("MUL2"), 6u);
  EXPECT_GT(states("ALU2"), states("ALU1"));
  EXPECT_GT(states("ALU1"), states("MUL1"));
  EXPECT_GT(states("MUL1"), states("MUL2"));
}

TEST(Extract, GtReducesAlu2Controller) {
  Cdfg g0 = diffeq();
  auto plan0 = ChannelPlan::derive(g0);
  auto before = extract_controllers(g0, plan0);

  Cdfg g1 = diffeq();
  auto res = run_global_transforms(g1);
  auto after = extract_controllers(g1, res.plan);

  EXPECT_LT(by_name(after, g1, "ALU2").machine.state_count(),
            by_name(before, g0, "ALU2").machine.state_count());
}

TEST(Extract, Figure11MicroOperationSequence) {
  // The A := Y + M1 fragment: wait request / set muxes / select op / go /
  // set register mux / write / parallel reset / send dones.
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  const auto& alu1 = by_name(cs, g, "ALU1");
  std::string text = to_text(alu1.machine);
  EXPECT_NE(text.find("selL_Y+"), std::string::npos);
  EXPECT_NE(text.find("selR_M1+"), std::string::npos);
  EXPECT_NE(text.find("op_add+"), std::string::npos);
  EXPECT_NE(text.find("go+"), std::string::npos);
  EXPECT_NE(text.find("rsel_A+"), std::string::npos);
  EXPECT_NE(text.find("lat_A+"), std::string::npos);
  // The parallel reset of Figure 11 step (v):
  EXPECT_NE(text.find("selL_Y- selR_M1- op_add- go- rsel_A- lat_A-"), std::string::npos);
}

TEST(Extract, SignalRolesAreBound) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  const auto& alu1 = by_name(cs, g, "ALU1");
  int global = 0, sel = 0, latch = 0, fugo = 0;
  for (const auto& [sid, b] : alu1.bindings) {
    (void)sid;
    if (b.role == SignalRole::kGlobalReady || b.role == SignalRole::kEnvironment) ++global;
    if (b.role == SignalRole::kMuxSelect) ++sel;
    if (b.role == SignalRole::kLatch) ++latch;
    if (b.role == SignalRole::kFuGo) ++fugo;
  }
  EXPECT_GE(global, 4);
  EXPECT_GE(sel, 4);
  EXPECT_EQ(latch, 3) << "B, A, U";
  EXPECT_EQ(fugo, 1);
}

TEST(Extract, MultiOpUnitsGetOpSelects) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  EXPECT_TRUE(by_name(cs, g, "ALU1").machine.find_signal("op_add").has_value());
  EXPECT_TRUE(by_name(cs, g, "ALU1").machine.find_signal("op_sub").has_value());
  // Multipliers execute a single operation: no op-select wires.
  EXPECT_FALSE(by_name(cs, g, "MUL1").machine.find_signal("op_mul").has_value());
  EXPECT_FALSE(by_name(cs, g, "MUL1").machine.find_signal("opack").has_value());
}

TEST(Extract, LoopControllerHasIdleAndConditionals) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  auto cs = extract_controllers(g, res.plan);
  const auto& alu2 = by_name(cs, g, "ALU2");
  ASSERT_TRUE(alu2.machine.find_signal("c_C").has_value());
  bool has_taken = false, has_exit = false;
  for (TransitionId t : alu2.machine.transition_ids()) {
    for (const auto& c : alu2.machine.transition(t).conds) {
      if (c.value) has_taken = true;
      if (!c.value) has_exit = true;
    }
  }
  EXPECT_TRUE(has_taken);
  EXPECT_TRUE(has_exit);
}

TEST(Extract, BackwardArcWaitsAtRingTail) {
  // Post-GT MUL2 waits the ALU1 multi-way wire (both events) at the end of
  // its cycle: pre-enabled on the first iteration.
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  auto cs = extract_controllers(g, res.plan);
  const auto& mul2 = by_name(cs, g, "MUL2");
  std::string text = to_text(mul2.machine);
  EXPECT_NE(text.find("backward-arc wait"), std::string::npos);
}

TEST(Extract, BackAnnotationAddsDirectedDontCares) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  ExtractOptions with, without;
  without.back_annotate = false;
  auto annotated = extract_controller(g, plan, *g.find_fu("ALU1"), with);
  auto bare = extract_controller(g, plan, *g.find_fu("ALU1"), without);
  auto count_ddc = [](const Xbm& m) {
    std::size_t n = 0;
    for (TransitionId t : m.transition_ids())
      for (const auto& e : m.transition(t).inputs)
        if (e.directed_dont_care) ++n;
    return n;
  };
  EXPECT_GT(count_ddc(annotated.machine), 0u);
  EXPECT_EQ(count_ddc(bare.machine), 0u);
  EXPECT_TRUE(validate(annotated.machine).empty());
  EXPECT_TRUE(validate(bare.machine).empty());
}

TEST(Extract, DdcWindowsEndAtCompulsoryConsumption) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  for (const auto& c : cs) {
    const Xbm& m = c.machine;
    for (TransitionId tid : m.transition_ids()) {
      std::set<SignalId::underlying> seen;
      for (const auto& e : m.transition(tid).inputs)
        EXPECT_TRUE(seen.insert(e.signal.value()).second)
            << m.name() << ": signal twice in one burst";
    }
  }
}

TEST(Extract, IfControllersBranchAndJoin) {
  Cdfg g = gcd();
  auto plan = ChannelPlan::derive(g);
  auto cs = extract_controllers(g, plan);
  const auto& alu1 = by_name(cs, g, "ALU1");
  EXPECT_TRUE(validate(alu1.machine).empty());
  // Two IF blocks: conditionals on D and E.
  EXPECT_TRUE(alu1.machine.find_signal("c_D").has_value());
  EXPECT_TRUE(alu1.machine.find_signal("c_E").has_value());
}

}  // namespace
}  // namespace adc
