// Flow-executor tests: parallel evaluation must be scheduling-independent
// (identical metrics to a serial run), stages must be timed and cached,
// errors must surface as failed points, and the CLI-facing helpers
// (builtin registry, ablation grid, script_for, JSON) must hold their
// contracts.

#include "runtime/flow.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace adc {
namespace {

std::vector<FlowRequest> small_grid() {
  // mac_reduce is the smallest benchmark with a loop + IF, so the full
  // pipeline stays fast while every transform still has something to do.
  const BuiltinBenchmark* b = find_builtin("mac_reduce");
  std::vector<FlowRequest> reqs;
  for (const char* script :
       {"lt", "gt2; gt5; lt", "gt1; gt2; gt4; gt2; gt5; lt",
        "gt1; gt2; gt3; gt4; gt2; gt5; lt", "gt1; gt2; gt3; gt4; gt2; gt5; lt(no_acks)"})
    reqs.push_back(make_builtin_request(*b, script));
  return reqs;
}

std::vector<std::string> metric_rows(const std::vector<FlowPoint>& pts) {
  std::vector<std::string> rows;
  for (const auto& p : pts)
    rows.push_back(p.script + "|" + std::to_string(p.channels) + "/" +
                   std::to_string(p.states) + "/" + std::to_string(p.transitions) + "/" +
                   std::to_string(p.products) + "/" + std::to_string(p.literals) + "/" +
                   std::to_string(p.latency) + "/" + (p.ok ? "ok" : "bad"));
  return rows;
}

TEST(FlowExecutor, ParallelMatchesSerial) {
  auto reqs = small_grid();
  FlowExecutor serial(nullptr);
  auto serial_points = serial.run_all(reqs);
  for (const auto& p : serial_points) ASSERT_TRUE(p.ok) << p.script << ": " << p.error;

  ThreadPool pool(4);
  FlowExecutor parallel(&pool);
  auto parallel_points = parallel.run_all(reqs);
  EXPECT_EQ(metric_rows(serial_points), metric_rows(parallel_points));
}

TEST(FlowExecutor, SecondRunIsServedFromCache) {
  FlowExecutor exec(nullptr);
  FlowRequest req = small_grid().front();
  FlowPoint first = exec.run(req);
  FlowPoint second = exec.run(req);
  ASSERT_TRUE(first.ok);
  ASSERT_TRUE(second.ok);
  // Frontend and controller stages hit the cache the second time.
  for (const auto& t : second.timings) {
    if (t.stage == "frontend" || t.stage == "controllers") {
      EXPECT_TRUE(t.cached) << t.stage;
    }
  }
  EXPECT_GT(exec.cache().stats().hits, 0u);
}

TEST(FlowExecutor, PrefixSharingReusesGlobalStages) {
  FlowExecutor exec(nullptr);
  const BuiltinBenchmark* b = find_builtin("mac_reduce");
  FlowRequest shorter = make_builtin_request(*b, "gt1; gt2");
  shorter.simulate = false;
  FlowRequest longer = make_builtin_request(*b, "gt1; gt2; gt4");
  longer.simulate = false;
  exec.run(shorter);
  std::uint64_t misses_before = exec.cache().stats().misses;
  exec.run(longer);
  // Only gt4 (plus extraction) computes anew; gt1 and gt2 come from cache.
  std::uint64_t gt_steps = exec.metrics().counter("flow.gt_steps").value();
  std::uint64_t gt_cached = exec.metrics().counter("flow.gt_steps_cached").value();
  EXPECT_EQ(gt_steps, 5u);   // 2 + 3
  EXPECT_EQ(gt_cached, 2u);  // the shared gt1; gt2 prefix
  EXPECT_EQ(exec.cache().stats().misses, misses_before + 2);  // gt4 + controllers
}

TEST(FlowExecutor, StageTimingsArePopulated) {
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(small_grid().front());
  ASSERT_TRUE(p.ok);
  std::set<std::string> stages;
  for (const auto& t : p.timings) stages.insert(t.stage);
  EXPECT_TRUE(stages.count("frontend"));
  EXPECT_TRUE(stages.count("global"));
  EXPECT_TRUE(stages.count("controllers"));
  EXPECT_TRUE(stages.count("sim"));
  EXPECT_GT(p.total_micros, 0u);
  EXPECT_GT(p.sim_events, 0);
}

TEST(FlowExecutor, BadScriptBecomesFailedPoint) {
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "gt99");
  FlowPoint p = exec.run(req);
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("gt99"), std::string::npos);
  EXPECT_EQ(exec.metrics().counter("flow.errors").value(), 1u);
}

TEST(FlowExecutor, RequestWithoutProgramFails) {
  FlowExecutor exec(nullptr);
  FlowRequest req;
  req.benchmark = "ghost";
  FlowPoint p = exec.run(req);
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("ghost"), std::string::npos);
}

TEST(FlowExecutor, SourceTextRequestsWork) {
  FlowRequest req;
  req.benchmark = "inline-program";
  req.source = R"(program tiny {
    fu ALU1 : alu;
    ALU1: A := X + Y;
    ALU1: B := A + X;
  })";
  req.script = "gt2; lt";
  req.init = {{"X", 2}, {"Y", 3}};
  req.sim.randomize_delays = false;
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(req);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_GT(p.states, 0u);
}

TEST(FlowHelpers, GtAblationGridHas32UniqueRecipes) {
  auto grid = gt_ablation_grid(true);
  ASSERT_EQ(grid.size(), 32u);
  std::set<std::string> unique(grid.begin(), grid.end());
  EXPECT_EQ(unique.size(), 32u);
  // Mask 31 is the paper's full recipe.
  EXPECT_EQ(grid.back(), "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  for (const auto& s : grid) EXPECT_NO_THROW(TransformScript::parse(s)) << s;
  auto nolt = gt_ablation_grid(false);
  EXPECT_EQ(nolt.front(), "");
  EXPECT_EQ(nolt.back(), "gt1; gt2; gt3; gt4; gt2; gt5");
}

TEST(FlowHelpers, ScriptForMirrorsThePipelineOrder) {
  GlobalPipelineOptions all;
  EXPECT_EQ(script_for(all, true, true), "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  EXPECT_EQ(script_for(all, false, false), "");
  GlobalPipelineOptions no_gt3 = all;
  no_gt3.gt3 = false;
  EXPECT_EQ(script_for(no_gt3, true, false), "gt1; gt2; gt4; gt2; gt5");
  GlobalPipelineOptions tuned;
  tuned.gt5_options.same_source = Gt5Options::SameSource::kAll;
  tuned.gt5_options.concurrency_reduction = true;
  tuned.gt5_options.max_period_increase = 200;
  LocalTransformOptions lo;
  lo.lt5_signal_sharing = false;
  EXPECT_EQ(script_for(tuned, true, true, lo),
            "gt1; gt2; gt3; gt4; gt2; gt5(broadcast=all, maxperiod=200); "
            "lt(no_sharing)");
  // Every rendering must be parseable and normalize to itself.
  auto s = script_for(tuned, true, true, lo);
  EXPECT_EQ(TransformScript::parse(s).to_string(), s);
}

TEST(FlowHelpers, BuiltinRegistry) {
  EXPECT_NE(find_builtin("diffeq"), nullptr);
  EXPECT_NE(find_builtin("ewf"), nullptr);
  EXPECT_EQ(find_builtin("no-such-benchmark"), nullptr);
  EXPECT_GE(builtin_benchmarks().size(), 6u);
  for (const auto& b : builtin_benchmarks()) {
    EXPECT_FALSE(b.name.empty());
    ASSERT_NE(b.make, nullptr);
  }
}

TEST(FlowHelpers, JsonReportContainsTheMetrics) {
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(small_grid().front());
  std::string json = to_json(p);
  EXPECT_NE(json.find("\"benchmark\":\"mac_reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"channels\":"), std::string::npos);
  EXPECT_NE(json.find("\"controllers\":"), std::string::npos);
  EXPECT_NE(json.find("\"stages\":"), std::string::npos);
  std::string metrics = exec.metrics().to_json();
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("flow.runs"), std::string::npos);
}

}  // namespace
}  // namespace adc
