// Metrics tests: histogram quantiles at the edges (empty, q=0, q=1, out-of-
// range q), gauges, and the JSON snapshot consumed by adc_dse --json.

#include "runtime/metrics.hpp"

#include <gtest/gtest.h>

#include "report/json_parse.hpp"

namespace adc {
namespace {

TEST(Histogram, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.quantile_micros(0.0), 0u);
  EXPECT_EQ(h.quantile_micros(0.5), 0u);
  EXPECT_EQ(h.quantile_micros(1.0), 0u);
}

TEST(Histogram, SingleSampleEveryQuantileIsTheSample) {
  Histogram h;
  h.record_micros(100);
  // Bucket bounds are powers of two; the recorded maximum caps the answer
  // so a lone 100µs sample never reports as 128µs.
  for (double q : {0.0, 0.5, 0.9, 1.0}) EXPECT_EQ(h.quantile_micros(q), 100u) << q;
}

TEST(Histogram, QOneNeverExceedsTheMaximum) {
  Histogram h;
  for (std::uint64_t v : {3u, 5u, 9u, 1000u, 70000u}) h.record_micros(v);
  EXPECT_EQ(h.quantile_micros(1.0), 70000u);
  EXPECT_LE(h.quantile_micros(0.99), 70000u);
}

TEST(Histogram, OutOfRangeQIsClamped) {
  Histogram h;
  h.record_micros(10);
  EXPECT_EQ(h.quantile_micros(-3.0), h.quantile_micros(0.0));
  EXPECT_EQ(h.quantile_micros(7.0), h.quantile_micros(1.0));
}

TEST(Histogram, QuantilesAreOrdered) {
  Histogram h;
  for (std::uint64_t i = 1; i <= 1000; ++i) h.record_micros(i);
  std::uint64_t p50 = h.quantile_micros(0.5);
  std::uint64_t p90 = h.quantile_micros(0.9);
  std::uint64_t p99 = h.quantile_micros(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max_micros());
  EXPECT_GE(p50, 256u);  // the true median (500) lives in bucket [256,512)
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 13);
  g.sub(20);
  EXPECT_EQ(g.value(), -7) << "gauges are signed";
}

TEST(MetricsRegistry, NamesAreStableAndShared) {
  MetricsRegistry reg;
  reg.counter("a").add(2);
  reg.counter("a").add(3);
  reg.gauge("q").set(4);
  EXPECT_EQ(reg.counters().at("a"), 5u);
  EXPECT_EQ(reg.gauges().at("q"), 4);
}

TEST(MetricsRegistry, JsonSnapshotCarriesQuantilesAndGauges) {
  MetricsRegistry reg;
  reg.counter("flow.runs").add(3);
  reg.gauge("pool.pending").set(2);
  for (std::uint64_t i = 1; i <= 100; ++i) reg.histogram("stage.sim").record_micros(i);

  JsonValue doc = parse_json(reg.to_json());
  EXPECT_EQ(doc.at("counters").at("flow.runs").number, 3.0);
  EXPECT_EQ(doc.at("gauges").at("pool.pending").number, 2.0);
  const JsonValue& h = doc.at("histograms").at("stage.sim");
  EXPECT_EQ(h.at("count").number, 100.0);
  for (const char* key : {"p50_us", "p90_us", "p99_us", "mean_us", "max_us"})
    EXPECT_TRUE(h.find(key)) << key;
  EXPECT_LE(h.at("p50_us").number, h.at("p99_us").number);
  EXPECT_EQ(h.at("max_us").number, 100.0);
}

}  // namespace
}  // namespace adc
