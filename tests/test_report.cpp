// Table formatting and area model.

#include <gtest/gtest.h>

#include "area/area_model.hpp"
#include "report/table.hpp"

namespace adc {
namespace {

TEST(Report, TableAlignsColumns) {
  Table t({"name", "#states", "#trans"});
  t.add_row({"ALU1", "7", "9"});
  t.add_row({"ALU2", "11", "13"});
  t.add_separator();
  t.add_row({"total", "18", "22"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| ALU1"), std::string::npos);
  EXPECT_NE(s.find("| total"), std::string::npos);
  // Every rendered line has the same width.
  std::size_t width = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(Report, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"x"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Report, PairCell) { EXPECT_EQ(pair_cell(7, 9), "7/9"); }

TEST(Area, TransistorEstimateMonotone) {
  ControllerArea small{"s", 10, 30, 3, 5};
  ControllerArea big{"b", 20, 60, 4, 8};
  EXPECT_LT(small.transistor_estimate(), big.transistor_estimate());
}

TEST(Area, SystemTotalsAggregate) {
  SystemArea sys;
  sys.controllers.push_back(ControllerArea{"a", 10, 30, 3, 5});
  sys.controllers.push_back(ControllerArea{"b", 20, 60, 4, 8});
  sys.global_wires = 5;
  EXPECT_EQ(sys.total_products(), 30u);
  EXPECT_EQ(sys.total_literals(), 90u);
  EXPECT_EQ(sys.total_transistors(),
            sys.controllers[0].transistor_estimate() +
                sys.controllers[1].transistor_estimate() + 30u);
}

TEST(Area, ControllerAreaFromGateStats) {
  GateStats st;
  st.products_shared = 12;
  st.literals_shared = 40;
  st.state_bits = 4;
  auto a = controller_area("ALU1", st, 9);
  EXPECT_EQ(a.products, 12u);
  EXPECT_EQ(a.literals, 40u);
  EXPECT_EQ(a.outputs, 9u);
}

}  // namespace
}  // namespace adc
