#!/bin/sh
# End-to-end smoke of the serving stack, exactly the operator workflow:
#
#   1. start adc_serve on a Unix socket with a persistent --cache-dir,
#      a /metrics listener and a structured access log;
#   2. drive the full 32-point DIFFEQ GT grid through adc_submit (cold:
#      exit 4 is the grid's deadlock floor, nothing warm) and, while the
#      grid is in flight, scrape /metrics and diff the exposed metric
#      families against the committed catalogue;
#   3. render one adc_top frame off the live daemon;
#   4. fetch a per-job trace with adc_submit --trace-out and validate it;
#   5. SIGTERM the daemon and require a clean drain (exit 0), then
#      validate the access log it wrote;
#   6. start a second daemon over the same cache directory and re-run the
#      grid: every point must replay from the disk tier ("from_disk_cache"
#      32 times in the JSON report);
#   7. SIGTERM again, then audit the cache directory with adc_obs_check.
#
# Usage: serve_smoke.sh ADC_SERVE ADC_SUBMIT ADC_OBS_CHECK ADC_TOP WORKDIR
set -eu

ADC_SERVE=$1
ADC_SUBMIT=$2
ADC_OBS_CHECK=$3
ADC_TOP=$4
WORKDIR=$5
CATALOGUE=$(dirname "$0")/data/metrics_catalogue.txt

SOCK="$WORKDIR/serve_smoke.sock"
CACHE="$WORKDIR/serve_smoke_cache"
READY="$WORKDIR/serve_smoke_ready.json"
ACCESS="$WORKDIR/serve_smoke_access.jsonl"
rm -rf "$CACHE" "$READY" "$SOCK" "$ACCESS" "$ACCESS.1"
mkdir -p "$WORKDIR"

fail() {
    echo "serve_smoke: $1" >&2
    exit 1
}

daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

start_daemon() {
    rm -f "$READY"
    "$ADC_SERVE" --socket "$SOCK" --cache-dir "$CACHE" \
        --metrics-port 0 --access-log "$ACCESS" \
        --ready-file "$READY" --workers 2 --log-level warn &
    daemon_pid=$!
    i=0
    while [ ! -f "$READY" ]; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "daemon did not come up"
        kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died during startup"
        sleep 0.1
    done
    metrics_port=$(sed -n 's/.*"metrics_port":\([0-9]*\).*/\1/p' "$READY")
    [ -n "$metrics_port" ] && [ "$metrics_port" -gt 0 ] ||
        fail "ready file carries no metrics port"
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    rc=0
    wait "$daemon_pid" || rc=$?
    daemon_pid=""
    [ "$rc" -eq 0 ] || fail "daemon drain exited $rc (want 0)"
}

grid_run() {
    out=$1
    rc=0
    "$ADC_SUBMIT" --socket "$SOCK" --grid gt --json "$out" || rc=$?
    # The GT grid's four gt5-without-gt2/gt3 corners deadlock in the event
    # simulator: 4 is the expected floor, anything else is a real failure.
    [ "$rc" -eq 4 ] || fail "grid run exited $rc (want the deadlock floor 4)"
}

warm_count() {
    grep -c '"from_disk_cache": true' "$1" || true
}

# --- cold daemon, scraped mid-load ------------------------------------------
start_daemon
grid_run "$WORKDIR/serve_smoke_cold.json" &
grid_pid=$!
sleep 2
# The grid is in flight: the exposition must already be valid and its
# family set must match the committed catalogue exactly.
"$ADC_OBS_CHECK" --prom-fetch "127.0.0.1:$metrics_port" \
    --catalogue "$CATALOGUE" \
    --prom-out "$WORKDIR/serve_smoke_metrics.txt" ||
    fail "mid-load /metrics scrape failed validation or catalogue diff"
"$ADC_TOP" --socket "$SOCK" --once > "$WORKDIR/serve_smoke_top.txt" ||
    fail "adc_top --once against the live daemon failed"
grep -q "^jobs " "$WORKDIR/serve_smoke_top.txt" ||
    fail "adc_top frame is missing the jobs line"
wait "$grid_pid" || fail "backgrounded cold grid run failed"
warm=$(warm_count "$WORKDIR/serve_smoke_cold.json")
[ "$warm" -eq 0 ] || fail "cold run reported $warm disk hits (want 0)"

# --- per-job trace off the live daemon --------------------------------------
"$ADC_SUBMIT" --socket "$SOCK" --bench diffeq --recipes "gt1; gt2; lt" \
    --no-sim --trace-out "$WORKDIR/serve_smoke_trace.json" ||
    fail "traced submit failed"
"$ADC_OBS_CHECK" --trace "$WORKDIR/serve_smoke_trace.json" ||
    fail "per-job trace failed validation"
grep -q '"queue.wait"' "$WORKDIR/serve_smoke_trace.json" ||
    fail "per-job trace has no queue.wait span"
stop_daemon

# --- access log written by the drained daemon -------------------------------
"$ADC_OBS_CHECK" --access-log "$ACCESS" || fail "access log failed validation"
done_lines=$(grep -c '"event":"done"' "$ACCESS" || true)
[ "$done_lines" -ge 33 ] ||
    fail "access log has $done_lines done lines (want >= 33)"

# --- restarted daemon over the same cache dir -------------------------------
start_daemon
grid_run "$WORKDIR/serve_smoke_warm.json"
warm=$(warm_count "$WORKDIR/serve_smoke_warm.json")
[ "$warm" -eq 32 ] || fail "warm run replayed $warm/32 points from disk"
stop_daemon

# --- cache directory integrity ----------------------------------------------
"$ADC_OBS_CHECK" --cache-dir "$CACHE" || fail "cache audit failed"

echo "serve_smoke: ok (32-point grid cold + warm, mid-load metrics scrape," \
     "traced job, validated access log, clean SIGTERM drains)"
