#!/bin/sh
# End-to-end smoke of the serving stack, exactly the operator workflow:
#
#   1. start adc_serve on a Unix socket with a persistent --cache-dir;
#   2. drive the full 32-point DIFFEQ GT grid through adc_submit (cold:
#      exit 4 is the grid's deadlock floor, nothing warm);
#   3. SIGTERM the daemon and require a clean drain (exit 0);
#   4. start a second daemon over the same cache directory and re-run the
#      grid: every point must replay from the disk tier ("from_disk_cache"
#      32 times in the JSON report);
#   5. SIGTERM again, then audit the cache directory with adc_obs_check.
#
# Usage: serve_smoke.sh ADC_SERVE ADC_SUBMIT ADC_OBS_CHECK WORKDIR
set -eu

ADC_SERVE=$1
ADC_SUBMIT=$2
ADC_OBS_CHECK=$3
WORKDIR=$4

SOCK="$WORKDIR/serve_smoke.sock"
CACHE="$WORKDIR/serve_smoke_cache"
READY="$WORKDIR/serve_smoke_ready.json"
rm -rf "$CACHE" "$READY" "$SOCK"
mkdir -p "$WORKDIR"

fail() {
    echo "serve_smoke: $1" >&2
    exit 1
}

daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
}
trap cleanup EXIT

start_daemon() {
    rm -f "$READY"
    "$ADC_SERVE" --socket "$SOCK" --cache-dir "$CACHE" \
        --ready-file "$READY" --workers 2 --log-level warn &
    daemon_pid=$!
    i=0
    while [ ! -f "$READY" ]; do
        i=$((i + 1))
        [ "$i" -le 100 ] || fail "daemon did not come up"
        kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died during startup"
        sleep 0.1
    done
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    rc=0
    wait "$daemon_pid" || rc=$?
    daemon_pid=""
    [ "$rc" -eq 0 ] || fail "daemon drain exited $rc (want 0)"
}

grid_run() {
    out=$1
    rc=0
    "$ADC_SUBMIT" --socket "$SOCK" --grid gt --json "$out" || rc=$?
    # The GT grid's four gt5-without-gt2/gt3 corners deadlock in the event
    # simulator: 4 is the expected floor, anything else is a real failure.
    [ "$rc" -eq 4 ] || fail "grid run exited $rc (want the deadlock floor 4)"
}

warm_count() {
    grep -c '"from_disk_cache": true' "$1" || true
}

# --- cold daemon ------------------------------------------------------------
start_daemon
grid_run "$WORKDIR/serve_smoke_cold.json"
warm=$(warm_count "$WORKDIR/serve_smoke_cold.json")
[ "$warm" -eq 0 ] || fail "cold run reported $warm disk hits (want 0)"
stop_daemon

# --- restarted daemon over the same cache dir -------------------------------
start_daemon
grid_run "$WORKDIR/serve_smoke_warm.json"
warm=$(warm_count "$WORKDIR/serve_smoke_warm.json")
[ "$warm" -eq 32 ] || fail "warm run replayed $warm/32 points from disk"
stop_daemon

# --- cache directory integrity ----------------------------------------------
"$ADC_OBS_CHECK" --cache-dir "$CACHE" || fail "cache audit failed"

echo "serve_smoke: ok (32-point grid cold + warm, clean SIGTERM drains)"
