// Thread-pool contract tests: stress, nested submission (a task that
// submits and waits on subtasks must not deadlock a full pool), exception
// propagation through futures, and idle-drain.

#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace adc {
namespace {

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(hits.load(), n);
  EXPECT_GE(pool.tasks_executed(), static_cast<std::uint64_t>(n));
}

TEST(ThreadPool, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 100; ++i) futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(pool.wait(futs[i]), i * i);
}

// Every task recursively submits children and helping-waits on them.  With
// 2 workers and fan-out 4 x depth 4 this deadlocks any pool whose wait()
// parks the thread instead of stealing work.
int spawn_tree(ThreadPool& pool, int depth) {
  if (depth == 0) return 1;
  std::vector<std::future<int>> kids;
  for (int i = 0; i < 4; ++i)
    kids.push_back(pool.submit([&pool, depth] { return spawn_tree(pool, depth - 1); }));
  int total = 1;
  for (auto& k : kids) total += pool.wait(k);
  return total;
}

TEST(ThreadPool, NestedSubmissionDoesNotDeadlock) {
  ThreadPool pool(2);
  auto root = pool.submit([&pool] { return spawn_tree(pool, 4); });
  // 1 + 4 + 16 + 64 + 256 = 341 nodes.
  EXPECT_EQ(pool.wait(root), 341);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  ThreadPool pool(2);
  auto boom = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(boom), std::runtime_error);
  // The worker that ran the throwing task keeps serving.
  auto ok = pool.submit([] { return 7; });
  EXPECT_EQ(pool.wait(ok), 7);
}

TEST(ThreadPool, ExceptionInsideNestedTaskReachesOuterWaiter) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([]() -> int { throw std::invalid_argument("inner"); });
    return pool.wait(inner);  // rethrows into the outer task
  });
  EXPECT_THROW(pool.wait(outer), std::invalid_argument);
  pool.wait_idle();
}

TEST(ThreadPool, RunOneFromExternalThread) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.run_one());  // empty pool: nothing to claim
  std::atomic<int> hits{0};
  for (int i = 0; i < 32; ++i)
    pool.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  // The external thread may win some tasks from the worker; both drain.
  while (hits.load() < 32)
    if (!pool.run_one()) std::this_thread::yield();
  pool.wait_idle();
  EXPECT_EQ(hits.load(), 32);
}

TEST(ThreadPool, DefaultSizeUsesHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(TaskGroup, WaitRunsOnlyGroupTasks) {
  ThreadPool pool(1);
  // Jam the lone worker so queued foreign work cannot move while we join.
  std::atomic<bool> release{false};
  auto jam = pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
  });
  std::atomic<int> strangers{0};
  for (int i = 0; i < 8; ++i)
    pool.submit([&strangers] { strangers.fetch_add(1, std::memory_order_relaxed); });

  TaskGroup group(pool);
  std::atomic<int> mine{0};
  for (int i = 0; i < 4; ++i)
    group.submit([&mine] { mine.fetch_add(1, std::memory_order_relaxed); });
  group.wait();  // claims the four group tasks inline on this thread

  EXPECT_EQ(mine.load(), 4);
  // The join must not have drained unrelated queued work — that is the
  // regression that nested whole flow points inside a stage's deadline.
  EXPECT_EQ(strangers.load(), 0);
  release.store(true, std::memory_order_release);
  pool.wait(jam);
  pool.wait_idle();
  EXPECT_EQ(strangers.load(), 8);
}

TEST(TaskGroup, WorkersHelpWhenIdle) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> hits{0};
  for (int i = 0; i < 256; ++i)
    group.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  group.wait();
  EXPECT_EQ(hits.load(), 256);
  pool.wait_idle();  // claimed-elsewhere wrappers drain as no-ops
}

TEST(TaskGroup, FirstExceptionPropagatesAfterAllSiblingsFinish) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> done{0};
  group.submit([] { throw std::runtime_error("subtask failed"); });
  for (int i = 0; i < 8; ++i)
    group.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  EXPECT_EQ(done.load(), 8);
  // Idempotent: a second wait (and the destructor) see a drained group.
  EXPECT_NO_THROW(group.wait());
}

TEST(TaskGroup, DestructorDrainsWithoutExplicitWait) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 16; ++i)
      group.submit([&hits] { hits.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(hits.load(), 16);
}

TEST(ThreadPool, StressNestedMixedLoad) {
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::vector<std::future<void>> roots;
  for (int r = 0; r < 64; ++r) {
    roots.push_back(pool.submit([&pool, &leaves] {
      std::vector<std::future<void>> kids;
      for (int i = 0; i < 8; ++i)
        kids.push_back(pool.submit(
            [&leaves] { leaves.fetch_add(1, std::memory_order_relaxed); }));
      for (auto& k : kids) pool.wait(k);
    }));
  }
  for (auto& root : roots) pool.wait(root);
  EXPECT_EQ(leaves.load(), 64 * 8);
}

}  // namespace
}  // namespace adc
