// Disk-tier stage cache tests: the crash-safety contract.  Whatever a
// crashed, killed or fault-injected writer leaves behind — a stray temp
// file, a truncated entry, flipped bits, a future format version — the
// reader must degrade to a clean miss (evicting the defective file), never
// to a wrong payload.

#include "runtime/disk_cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "runtime/fault.hpp"

namespace fs = std::filesystem;

namespace adc {
namespace {

class DiskCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault().reset();  // tests share the process-wide injector
    dir_ = fs::path(::testing::TempDir()) /
           ("adc_disk_cache_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fault().reset();
    fs::remove_all(dir_);
  }

  fs::path entry_path(const std::string& key) const {
    return dir_ / (key + ".adcstage");
  }

  fs::path dir_;
};

TEST_F(DiskCacheTest, RoundTripAndStats) {
  DiskCache cache(dir_.string());
  EXPECT_TRUE(cache.enabled());
  EXPECT_FALSE(cache.get("deadbeef").has_value());
  EXPECT_TRUE(cache.put("deadbeef", "payload-bytes"));
  EXPECT_TRUE(cache.contains("deadbeef"));
  auto got = cache.get("deadbeef");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "payload-bytes");
  DiskCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.corrupt, 0u);
  // No temp droppings on the happy path.
  for (const auto& e : fs::directory_iterator(dir_))
    EXPECT_EQ(e.path().extension(), ".adcstage") << e.path();
}

TEST_F(DiskCacheTest, EntriesSurviveReopen) {
  {
    DiskCache cache(dir_.string());
    ASSERT_TRUE(cache.put("cafe01", "persisted across process restarts"));
  }
  DiskCache reopened(dir_.string());
  auto got = reopened.get("cafe01");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "persisted across process restarts");
}

TEST_F(DiskCacheTest, EmptyDirDisablesTheTier) {
  DiskCache cache("");
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.put("k", "v"));
  EXPECT_FALSE(cache.get("k").has_value());
}

TEST_F(DiskCacheTest, KillBetweenTempAndRenameLeavesNoEntry) {
  // drop at disk.put.commit models dying after the temp file is fsynced
  // but before the atomic rename publishes it.
  fault().configure("disk.put.commit=drop:1");
  DiskCache cache(dir_.string());
  EXPECT_FALSE(cache.put("0badc0de", "never committed"));
  EXPECT_FALSE(fs::exists(entry_path("0badc0de")));
  EXPECT_FALSE(cache.get("0badc0de").has_value());
  EXPECT_EQ(cache.stats().put_errors, 1u);
  // The stray temp file is exactly what a crash leaves; a later successful
  // put of the same key must still land.
  fault().reset();
  EXPECT_TRUE(cache.put("0badc0de", "second try"));
  auto got = cache.get("0badc0de");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "second try");
}

TEST_F(DiskCacheTest, TruncatedEntryMissesCleanlyAndIsEvicted) {
  DiskCache cache(dir_.string());
  ASSERT_TRUE(cache.put("aa11", std::string(256, 'p')));
  fs::resize_file(entry_path("aa11"), 40);  // header + a stub of payload
  EXPECT_FALSE(cache.get("aa11").has_value());
  EXPECT_FALSE(fs::exists(entry_path("aa11")));  // defective file removed
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(DiskCacheTest, BitFlippedPayloadMissesCleanlyAndIsEvicted) {
  DiskCache cache(dir_.string());
  ASSERT_TRUE(cache.put("bb22", std::string(128, 'q')));
  {
    std::fstream f(entry_path("bb22"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 64);  // a payload byte, past the 24-byte header
    f.put('Q');
  }
  EXPECT_FALSE(cache.get("bb22").has_value());
  EXPECT_FALSE(fs::exists(entry_path("bb22")));
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(DiskCacheTest, VersionMismatchMissesCleanlyAndIsEvicted) {
  DiskCache cache(dir_.string());
  ASSERT_TRUE(cache.put("cc33", "from the future"));
  {
    std::fstream f(entry_path("cc33"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);  // the version field follows the 4-byte magic
    char v2[4] = {2, 0, 0, 0};
    f.write(v2, 4);
  }
  EXPECT_FALSE(cache.get("cc33").has_value());
  EXPECT_FALSE(fs::exists(entry_path("cc33")));
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(DiskCacheTest, InjectedShortWriteIsDetectedOnRead) {
  // The payload is cut mid-write (fault at disk.put.payload), so the
  // header's length no longer matches the bytes that made it to disk.
  fault().configure("disk.put.payload=shortwrite:1");
  DiskCache cache(dir_.string());
  cache.put("dd44", std::string(512, 'r'));
  fault().reset();
  EXPECT_FALSE(cache.get("dd44").has_value());
  EXPECT_EQ(cache.stats().corrupt, 1u);
}

TEST_F(DiskCacheTest, LruEvictionKeepsNewestUnderBudget) {
  // Budget fits roughly one 400-byte entry (payload + 24-byte header).
  DiskCache cache(dir_.string(), 600);
  ASSERT_TRUE(cache.put("old1", std::string(400, 'a')));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cache.put("new2", std::string(400, 'b')));
  EXPECT_LE(cache.total_bytes(), 600u);
  EXPECT_FALSE(cache.contains("old1"));  // oldest mtime evicted first
  EXPECT_TRUE(cache.contains("new2"));
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST_F(DiskCacheTest, HitRefreshesLruRecency) {
  DiskCache cache(dir_.string(), 1000);
  ASSERT_TRUE(cache.put("first", std::string(400, 'a')));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cache.put("second", std::string(400, 'b')));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cache.get("first").has_value());  // touch: now most recent
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cache.put("third", std::string(400, 'c')));
  EXPECT_TRUE(cache.contains("first"));
  EXPECT_FALSE(cache.contains("second"));
}

TEST_F(DiskCacheTest, ScanReportsDefectsWithoutMutating) {
  DiskCache cache(dir_.string());
  ASSERT_TRUE(cache.put("good", "valid payload"));
  ASSERT_TRUE(cache.put("bad", std::string(64, 'z')));
  {
    std::fstream f(entry_path("bad"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('!');
  }
  auto entries = DiskCache::scan(dir_.string());
  ASSERT_EQ(entries.size(), 2u);
  // scan() sorts by key: "bad" < "good".
  EXPECT_EQ(entries[0].key, "bad");
  EXPECT_FALSE(entries[0].valid);
  EXPECT_EQ(entries[0].defect, "checksum mismatch");
  EXPECT_EQ(entries[1].key, "good");
  EXPECT_TRUE(entries[1].valid);
  // The audit is read-only: the defective file is still there.
  EXPECT_TRUE(fs::exists(entry_path("bad")));
}

TEST_F(DiskCacheTest, ChecksumIsFnv1a64) {
  // Pinned reference values: the on-disk format must not drift silently.
  EXPECT_EQ(DiskCache::checksum(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(DiskCache::checksum("a"), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace adc
