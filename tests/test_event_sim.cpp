// Gate-level event simulation of the synthesized distributed controllers
// against the behavioural datapath — the end-to-end correctness oracle.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "sim/datapath.hpp"
#include "sim/event_sim.hpp"
#include "sim/golden.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

struct System {
  Cdfg g{"empty"};
  ChannelPlan plan;
  std::vector<ControllerInstance> instances;
};

System build(Cdfg graph, bool gt, bool lt) {
  System s;
  s.g = std::move(graph);
  if (gt) {
    auto res = run_global_transforms(s.g);
    s.plan = std::move(res.plan);
  } else {
    s.plan = ChannelPlan::derive(s.g);
  }
  for (auto& c : extract_controllers(s.g, s.plan)) {
    ControllerInstance inst;
    if (lt) inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    s.instances.push_back(std::move(inst));
  }
  return s;
}

std::map<std::string, std::int64_t> diffeq_init() {
  return {{"X", 0}, {"a", 6}, {"dx", 1}, {"U", 3}, {"Y", 1}, {"X1", 0}, {"C", 1}};
}

TEST(EventSim, AluComputeSemantics) {
  EXPECT_EQ(alu_compute(RtlOp::kAdd, 3, 4), 7);
  EXPECT_EQ(alu_compute(RtlOp::kSub, 3, 4), -1);
  EXPECT_EQ(alu_compute(RtlOp::kMul, 3, 4), 12);
  EXPECT_EQ(alu_compute(RtlOp::kLt, 3, 4), 1);
  EXPECT_EQ(alu_compute(RtlOp::kDiv, 8, 0), 0);
}

class EventSimVariant : public ::testing::TestWithParam<std::pair<bool, bool>> {};

TEST_P(EventSimVariant, DiffeqMatchesGoldenAcrossSeeds) {
  auto [gt, lt] = GetParam();
  System s = build(diffeq(), gt, lt);
  auto init = diffeq_init();
  auto gold = diffeq_reference_registers(init);
  for (unsigned seed = 1; seed <= 10; ++seed) {
    EventSimOptions o;
    o.seed = seed;
    auto r = run_event_sim(s.g, s.plan, s.instances, init, o);
    ASSERT_TRUE(r.completed) << "gt=" << gt << " lt=" << lt << " seed=" << seed << ": "
                             << r.error;
    EXPECT_EQ(r.registers.at("X"), gold.at("X"));
    EXPECT_EQ(r.registers.at("Y"), gold.at("Y"));
    EXPECT_EQ(r.registers.at("U"), gold.at("U"));
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, EventSimVariant,
                         ::testing::Values(std::make_pair(false, false),
                                           std::make_pair(true, false),
                                           std::make_pair(false, true),
                                           std::make_pair(true, true)));

TEST(EventSim, OptimizedSystemIsFaster) {
  auto init = diffeq_init();
  init["a"] = 12;
  EventSimOptions o;
  o.randomize_delays = false;
  System unopt = build(diffeq(), false, false);
  auto ru = run_event_sim(unopt.g, unopt.plan, unopt.instances, init, o);
  System opt = build(diffeq(), true, true);
  auto ro = run_event_sim(opt.g, opt.plan, opt.instances, init, o);
  ASSERT_TRUE(ru.completed) << ru.error;
  ASSERT_TRUE(ro.completed) << ro.error;
  EXPECT_LT(ro.finish_time, ru.finish_time)
      << "the transformed system must outperform the naive one";
}

TEST(EventSim, OperationCountMatchesIterations) {
  System s = build(diffeq(), true, true);
  auto init = diffeq_init();  // 6 iterations at a=6, dx=1 from X=0
  auto gold = diffeq_reference(DiffeqInputs{0, 1, 3, 1, 6});
  EventSimOptions o;
  auto r = run_event_sim(s.g, s.plan, s.instances, init, o);
  ASSERT_TRUE(r.completed) << r.error;
  // 7 FU operations per iteration (3 ALU1, 2 MUL1, 1 MUL2 + X/Y/C on ALU2
  // = 3) minus the merged assign: count is iterations * number of
  // operation statements executed on FUs.
  EXPECT_GE(r.operations, gold.iterations * 7);
}

TEST(EventSim, ZeroIterationRun) {
  System s = build(diffeq(), true, true);
  auto init = diffeq_init();
  init["C"] = 0;
  init["X"] = 100;  // also makes x < a false
  auto r = run_event_sim(s.g, s.plan, s.instances, init, EventSimOptions{});
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers.at("X"), 100);
}

TEST(EventSim, StraightLineBenchmarksRun) {
  std::map<std::string, std::int64_t> init{
      {"X0", 1}, {"X1", 2}, {"X2", 3}, {"X3", 4}, {"K0", 5}, {"K1", 6}, {"K2", 7},
      {"K3", 8}, {"IN", 9}, {"S1", 1}, {"S2", 2}, {"S3", 3}};
  for (auto make : {fir4, ewf_lite}) {
    Cdfg ref = make();
    auto gold = run_sequential(ref, init);
    System s = build(make(), true, true);
    for (unsigned seed = 1; seed <= 4; ++seed) {
      EventSimOptions o;
      o.seed = seed;
      auto r = run_event_sim(s.g, s.plan, s.instances, init, o);
      ASSERT_TRUE(r.completed) << s.g.name() << ": " << r.error;
      for (const auto& [reg, v] : gold) {
        if (r.registers.count(reg)) {
          EXPECT_EQ(r.registers.at(reg), v) << s.g.name() << " " << reg;
        }
      }
    }
  }
}

TEST(EventSim, GcdRuns) {
  Cdfg ref = gcd();
  std::map<std::string, std::int64_t> init{{"A", 21}, {"B", 14}, {"C", 1}};
  auto gold = run_sequential(ref, init);
  System s = build(gcd(), true, true);
  auto r = run_event_sim(s.g, s.plan, s.instances, init, EventSimOptions{});
  ASSERT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers.at("A"), gold.at("A"));
  EXPECT_EQ(r.registers.at("B"), gold.at("B"));
}

TEST(EventSim, MacReduceRuns) {
  Cdfg ref = mac_reduce();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"K", 3}, {"T", 40},
                                           {"N", 6}, {"dx", 1}, {"S", 0}, {"C", 1}};
  auto gold = run_sequential(ref, init);
  System s = build(mac_reduce(), true, true);
  for (unsigned seed = 1; seed <= 6; ++seed) {
    EventSimOptions o;
    o.seed = seed;
    auto r = run_event_sim(s.g, s.plan, s.instances, init, o);
    ASSERT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers.at("S"), gold.at("S")) << "seed " << seed;
  }
}

TEST(EventSim, EventBudgetGuards) {
  System s = build(diffeq(), true, true);
  auto init = diffeq_init();
  init["a"] = 1000000;
  EventSimOptions o;
  o.max_events = 2000;
  auto r = run_event_sim(s.g, s.plan, s.instances, init, o);
  EXPECT_FALSE(r.completed);
  EXPECT_FALSE(r.error.empty());
}

TEST(EventSim, Lt4TimingAssumptionIsReal) {
  // LT4/LT1 bet on the latch path being faster than the done-reset and
  // wire paths.  Invert that relation in the delay model and the optimized
  // system may compute garbage — while the unoptimized (fully handshaken)
  // system must still be correct.  This documents that the paper's
  // "user-supplied timing information" is a genuine obligation.
  DelayModel broken = DelayModel::typical();
  broken.latch_write = {40, 40};  // absurdly slow register strobe path
  broken.done_reset = {1, 1};
  broken.wire = {1, 1};

  auto init = diffeq_init();
  auto gold = diffeq_reference_registers(init);

  System safe = build(diffeq(), false, false);
  bool unopt_ok = true;
  System risky = build(diffeq(), true, true);
  bool opt_ok = true;
  for (unsigned seed = 1; seed <= 6; ++seed) {
    EventSimOptions o;
    o.seed = seed;
    o.delays = broken;
    auto ru = run_event_sim(safe.g, safe.plan, safe.instances, init, o);
    unopt_ok = unopt_ok && ru.completed && ru.registers.at("U") == gold.at("U");
    auto ro = run_event_sim(risky.g, risky.plan, risky.instances, init, o);
    opt_ok = opt_ok && ro.completed && ro.registers.at("U") == gold.at("U");
  }
  EXPECT_TRUE(unopt_ok) << "the fully-acknowledged design tolerates any delays";
  EXPECT_FALSE(opt_ok) << "the relative-timing bets must visibly fail when broken";
}

TEST(EventSim, GoldenReferenceSelfCheck) {
  auto out = diffeq_reference(DiffeqInputs{0, 1, 3, 1, 3});
  // x: 0,1,2,3 -> 3 iterations.
  EXPECT_EQ(out.iterations, 3);
  EXPECT_EQ(out.x, 3);
  // Hand-computed: it1: u=3-0-3=0, y=1+3=4; it2: u=0-3*1*0-3*4=-12, y=4+0=4;
  // it3: u=-12-3*2*(-12)-3*4=48, y=4-12=-8.
  EXPECT_EQ(out.u, 48);
  EXPECT_EQ(out.y, -8);
}

}  // namespace
}  // namespace adc
