// Stage-cache tests: fingerprint hygiene, hit/miss accounting, in-flight
// deduplication, exception recovery, LRU bounding — and the end-to-end
// guarantee the DSE runtime rests on: a cached flow produces byte-identical
// netlists to a cold flow.

#include "runtime/cache.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "logic/minimize.hpp"
#include "logic/netlist.hpp"
#include "runtime/flow.hpp"

namespace adc {
namespace {

TEST(Fingerprint, LengthPrefixingSeparatesConcatenations) {
  auto ab_c = FingerprintBuilder().add("ab").add("c").digest();
  auto a_bc = FingerprintBuilder().add("a").add("bc").digest();
  auto abc = FingerprintBuilder().add("abc").digest();
  EXPECT_FALSE(ab_c == a_bc);
  EXPECT_FALSE(ab_c == abc);
  EXPECT_FALSE(a_bc == abc);
}

TEST(Fingerprint, ChainingIsOrderSensitive) {
  auto base = FingerprintBuilder().add("program").digest();
  auto s12 = FingerprintBuilder().add(base).add("gt1").add("gt2").digest();
  auto s21 = FingerprintBuilder().add(base).add("gt2").add("gt1").digest();
  EXPECT_FALSE(s12 == s21);
  EXPECT_EQ(s12.hex().size(), 32u);
  EXPECT_NE(s12.hex(), s21.hex());
}

TEST(StageCache, CountsHitsAndMisses) {
  StageCache cache(16);
  Fingerprint k = FingerprintBuilder().add("k").digest();
  int computes = 0;
  auto v1 = cache.get_or_compute<int>(k, [&] { ++computes; return 5; });
  auto v2 = cache.get_or_compute<int>(k, [&] { ++computes; return 5; });
  EXPECT_EQ(*v1, 5);
  EXPECT_EQ(v1.get(), v2.get());  // literally the same cached object
  EXPECT_EQ(computes, 1);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(StageCache, ZeroCapacityDisablesCaching) {
  StageCache cache(0);
  Fingerprint k = FingerprintBuilder().add("k").digest();
  int computes = 0;
  cache.get_or_compute<int>(k, [&] { ++computes; return 1; });
  cache.get_or_compute<int>(k, [&] { ++computes; return 1; });
  EXPECT_EQ(computes, 2);
}

TEST(StageCache, InflightComputeIsDeduplicated) {
  StageCache cache(16);
  Fingerprint k = FingerprintBuilder().add("slow").digest();
  std::atomic<int> computes{0};
  auto job = [&] {
    return *cache.get_or_compute<int>(k, [&] {
      computes.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return 99;
    });
  };
  std::thread t1([&] { EXPECT_EQ(job(), 99); });
  std::thread t2([&] { EXPECT_EQ(job(), 99); });
  t1.join();
  t2.join();
  EXPECT_EQ(computes.load(), 1);
  CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits + s.joins, 1u);
}

TEST(StageCache, FailedComputeIsRetried) {
  StageCache cache(16);
  Fingerprint k = FingerprintBuilder().add("fallible").digest();
  int attempts = 0;
  EXPECT_THROW(cache.get_or_compute<int>(k,
                                         [&]() -> int {
                                           ++attempts;
                                           throw std::runtime_error("first try fails");
                                         }),
               std::runtime_error);
  auto v = cache.get_or_compute<int>(k, [&] { ++attempts; return 3; });
  EXPECT_EQ(*v, 3);
  EXPECT_EQ(attempts, 2);
}

TEST(StageCache, EvictionKeepsEntriesBounded) {
  StageCache cache(4);
  for (int i = 0; i < 20; ++i) {
    Fingerprint k = FingerprintBuilder().add(std::int64_t{i}).digest();
    cache.get_or_compute<int>(k, [i] { return i; });
  }
  CacheStats s = cache.stats();
  EXPECT_LE(s.entries, 4u);
  EXPECT_GE(s.evictions, 16u);
}

TEST(StageCache, LruPrefersRecentlyUsed) {
  StageCache cache(2);
  Fingerprint a = FingerprintBuilder().add("a").digest();
  Fingerprint b = FingerprintBuilder().add("b").digest();
  Fingerprint c = FingerprintBuilder().add("c").digest();
  int a_computes = 0;
  cache.get_or_compute<int>(a, [&] { ++a_computes; return 1; });
  cache.get_or_compute<int>(b, [] { return 2; });
  cache.get_or_compute<int>(a, [&] { ++a_computes; return 1; });  // touch a
  cache.get_or_compute<int>(c, [] { return 3; });                 // evicts b
  cache.get_or_compute<int>(a, [&] { ++a_computes; return 1; });  // still resident
  EXPECT_EQ(a_computes, 1);
}

// The acceptance guarantee: a recipe served from the stage cache yields the
// exact same netlists as a cold evaluation.
TEST(StageCache, CachedFlowProducesByteIdenticalNetlists) {
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"),
                                         "gt1; gt2; gt4; gt2; gt5; lt");
  req.simulate = false;

  auto netlists = [](const FlowPoint& p) {
    std::vector<std::string> out;
    for (const auto& inst : p.artifacts->instances) {
      auto logic = synthesize_logic(inst.controller);
      out.push_back(to_verilog(logic, inst.controller.machine.name()));
      out.push_back(to_equations(logic));
    }
    return out;
  };

  FlowExecutor::Options cold_opts;
  cold_opts.cache_capacity = 0;
  FlowExecutor cold(nullptr, cold_opts);
  FlowPoint cold_point = cold.run(req);
  ASSERT_TRUE(cold_point.ok);

  FlowExecutor warm(nullptr);
  FlowPoint first = warm.run(req);
  FlowPoint second = warm.run(req);  // fully cached
  ASSERT_TRUE(second.ok);
  // The cached run reuses the identical artifact object...
  EXPECT_EQ(first.artifacts.get(), second.artifacts.get());
  // ...and both equal the cold evaluation, byte for byte.
  EXPECT_EQ(netlists(cold_point), netlists(second));
  EXPECT_EQ(cold_point.channels, second.channels);
  EXPECT_EQ(cold_point.literals, second.literals);
}

}  // namespace
}  // namespace adc
