// Hazard-free two-level minimization: the Nowick/Dill rules on small
// hand-built functions, candidate growth, covering, and the classic
// example where plain logic minimization would produce a hazard.

#include <gtest/gtest.h>

#include "logic/cover.hpp"
#include "logic/hazard_free.hpp"

namespace adc {
namespace {

Cube cube(const std::string& pattern) {
  Cube c(pattern.size());
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '0') c.set(i, Cube::V::kZero);
    if (pattern[i] == '1') c.set(i, Cube::V::kOne);
  }
  return c;
}

TEST(HazardFree, StaticOneTransitionNeedsSingleCube) {
  // f over (a, b): required 1->1 transition spanning a while b=1.
  FunctionSpec f;
  f.name = "f";
  f.vars = 2;
  f.required.push_back(cube("-1"));
  f.off.push_back(cube("00"));
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.products.size(), 1u);
  EXPECT_TRUE(res.products[0].contains(cube("-1")));
  EXPECT_TRUE(verify_cover(f, res.products).empty());
}

TEST(HazardFree, TheClassicStaticHazard) {
  // f(a,b,c) = a'b + ac with a 1->1 transition across a while b=c=1: the
  // minimal sum-of-products has a hazard; the hazard-free cover must add
  // (or grow) a product containing the whole transition cube b=c=1.
  FunctionSpec f;
  f.name = "hazard";
  f.vars = 3;
  f.required.push_back(cube("-11"));  // the 1->1 transition a: 0->1 @ b=c=1
  f.required.push_back(cube("01-"));  // a'b region
  f.required.push_back(cube("1-1"));  // ac region
  f.off.push_back(cube("00-"));
  f.off.push_back(cube("1-0"));
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(verify_cover(f, res.products).empty());
  bool consensus_covered = false;
  for (const auto& p : res.products)
    if (p.contains(cube("-11"))) consensus_covered = true;
  EXPECT_TRUE(consensus_covered) << "the consensus term bc must be one product";
}

TEST(HazardFree, DynamicRiseAnchorsTheEndPoint) {
  // 0 -> 1 over a (b free): products intersecting the transition must
  // contain the end point.
  FunctionSpec f;
  f.name = "rise";
  f.vars = 2;
  Cube t = cube("--");
  Cube a = cube("0-");
  Cube b = cube("1-");
  f.dynamic.push_back(HfDynamic{t, a, b, HfType::kRise});
  f.off.push_back(a);
  f.required.push_back(b);
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  for (const auto& p : res.products) {
    EXPECT_TRUE(p.contains(b));
    EXPECT_FALSE(p.intersects(a));
  }
  EXPECT_TRUE(verify_cover(f, res.products).empty());
}

TEST(HazardFree, DynamicFallAnchorsTheStartPoint) {
  FunctionSpec f;
  f.name = "fall";
  f.vars = 2;
  Cube t = cube("--");
  Cube a = cube("1-");  // start, f=1
  Cube b = cube("0-");  // end, f=0
  f.dynamic.push_back(HfDynamic{t, a, b, HfType::kFall});
  f.off.push_back(b);
  f.required.push_back(a);
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  for (const auto& p : res.products) EXPECT_TRUE(p.contains(a));
}

TEST(HazardFree, ImplicantValidityRules) {
  FunctionSpec f;
  f.name = "v";
  f.vars = 3;
  f.off.push_back(cube("000"));
  f.dynamic.push_back(HfDynamic{cube("1--"), cube("10-"), cube("11-"), HfType::kRise});
  EXPECT_FALSE(implicant_valid(f, cube("0-0"))) << "touches OFF";
  EXPECT_FALSE(implicant_valid(f, cube("10-"))) << "intersects rise without its end";
  EXPECT_TRUE(implicant_valid(f, cube("11-"))) << "contains the anchor";
  EXPECT_TRUE(implicant_valid(f, cube("1--"))) << "contains the anchor, avoids OFF";
}

TEST(HazardFree, GrowthAbsorbsAnchors) {
  // A required cube inside a fall transition without the start point is
  // still coverable: the product grows to absorb the anchor.
  FunctionSpec f;
  f.name = "grow";
  f.vars = 2;
  f.dynamic.push_back(HfDynamic{cube("--"), cube("11"), cube("01"), HfType::kFall});
  f.required.push_back(cube("01"));  // end... of another static piece
  // No OFF region at all: growth must succeed.
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible) << (res.issues.empty() ? "" : res.issues[0]);
  ASSERT_EQ(res.products.size(), 1u);
  EXPECT_TRUE(res.products[0].contains(cube("11"))) << "anchor absorbed";
}

TEST(HazardFree, InfeasibleSpecReported) {
  // The anchor of a fall transition lies inside OFF: contradiction.
  FunctionSpec f;
  f.name = "bad";
  f.vars = 2;
  f.dynamic.push_back(HfDynamic{cube("--"), cube("11"), cube("01"), HfType::kFall});
  f.off.push_back(cube("11"));
  f.required.push_back(cube("01"));
  auto res = minimize_hazard_free(f);
  EXPECT_FALSE(res.feasible);
  EXPECT_FALSE(res.issues.empty());
}

TEST(HazardFree, StaticZeroRegionNeverIntersected) {
  FunctionSpec f;
  f.name = "s0";
  f.vars = 3;
  f.required.push_back(cube("11-"));
  f.off.push_back(cube("0--"));  // static 0->0 over the whole a=0 half
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  for (const auto& p : res.products) EXPECT_FALSE(p.intersects(cube("0--")));
}

TEST(HazardFree, ConstantZeroFunction) {
  FunctionSpec f;
  f.name = "zero";
  f.vars = 2;
  f.off.push_back(cube("--"));
  auto res = minimize_hazard_free(f);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.products.empty());
}

TEST(HazardFree, DominatedRequiredCubesDropOut) {
  FunctionSpec f;
  f.name = "dom";
  f.vars = 2;
  f.required.push_back(cube("1-"));
  f.required.push_back(cube("11"));  // contained in the first
  auto res = minimize_hazard_free(f);
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.products.size(), 1u);
}

TEST(HazardFree, ExactCoveringBeatsOrMatchesGreedy) {
  // Three required cubes coverable by two products; exact must find <= greedy.
  FunctionSpec f;
  f.name = "cover";
  f.vars = 3;
  f.required.push_back(cube("11-"));
  f.required.push_back(cube("1-1"));
  f.required.push_back(cube("-11"));
  f.off.push_back(cube("000"));
  CoverOptions greedy;
  CoverOptions exact;
  exact.exact = true;
  auto rg = minimize_hazard_free(f, greedy);
  auto rx = minimize_hazard_free(f, exact);
  ASSERT_TRUE(rg.feasible && rx.feasible);
  EXPECT_LE(rx.products.size(), rg.products.size());
  EXPECT_TRUE(verify_cover(f, rx.products).empty());
}

TEST(HazardFree, CandidatesAreValidAndCoverTheirSeeds) {
  FunctionSpec f;
  f.name = "max";
  f.vars = 3;
  f.required.push_back(cube("111"));
  f.off.push_back(cube("0-0"));
  auto cands = candidate_implicants(f);
  ASSERT_FALSE(cands.empty());
  bool grown = false;
  for (const auto& cand : cands) {
    EXPECT_TRUE(implicant_valid(f, cand));
    EXPECT_TRUE(cand.contains(cube("111")));
    if (cand.literal_count() < 3) grown = true;
  }
  EXPECT_TRUE(grown) << "expansion should widen beyond the seed point";
}

}  // namespace
}  // namespace adc
