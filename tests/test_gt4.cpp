// GT4 merging of assignment nodes (§3.4).

#include <gtest/gtest.h>

#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/builder.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"

namespace adc {
namespace {

TEST(Gt4, MergesThePapersExample) {
  // "the two nodes Y := Y + M2 and X1 := X ... are merged into one node
  // Y := Y + M2; X1 := X".
  Cdfg g = diffeq();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 1);
  EXPECT_TRUE(g.find_node_by_label("Y := Y + M2; X1 := X").has_value());
  EXPECT_FALSE(g.find_node_by_label("X1 := X").has_value());
  EXPECT_TRUE(validate(g).empty());
}

TEST(Gt4, MergedNodeInheritsConstraints) {
  Cdfg g = diffeq();
  gt4_merge_assignments(g);
  NodeId merged = *g.find_node_by_label("Y := Y + M2; X1 := X");
  // X1 := X carried a register-allocation arc from M1 := U * X1.
  NodeId m1a = *g.find_node_by_label("M1 := U * X1");
  EXPECT_TRUE(g.find_arc(m1a, merged).has_value());
}

TEST(Gt4, SemanticsPreserved) {
  Cdfg g = diffeq();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 7}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(diffeq(), init);
  gt4_merge_assignments(g);
  for (unsigned seed = 1; seed <= 10; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold);
  }
}

TEST(Gt4, RefusesDependentNeighbours) {
  // The assignment consumes the operation's result: running them in
  // parallel would read a stale value, so the merge must not happen.
  ProgramBuilder b("dep");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "x := p + q");
  b.stmt(alu, "y := x");  // reads the op's fresh result
  Cdfg g = b.finish();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 0);
}

TEST(Gt4, RefusesWriteConflicts) {
  ProgramBuilder b("waw");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "x := p + q");
  b.stmt(alu, "x := r");  // same destination: a race if parallel
  Cdfg g = b.finish();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 0);
}

TEST(Gt4, RefusesSourceOverwrite) {
  // The assignment overwrites a register the operation still reads.
  ProgramBuilder b("war");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "x := p + q");
  b.stmt(alu, "p := r");
  Cdfg g = b.finish();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 0);
}

TEST(Gt4, MergesIndependentIntoSuccessorWhenNoPredecessor) {
  // The assignment is the FIRST node of its unit; only the succeeding
  // operation is available.
  ProgramBuilder b("succ");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "t := s");  // independent move
  b.stmt(alu, "x := p + q");
  Cdfg g = b.finish();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 1);
  // Parallel semantics must still match the sequential program.
  std::map<std::string, std::int64_t> init{{"s", 5}, {"p", 2}, {"q", 3}};
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers.at("t"), 5);
  EXPECT_EQ(r.registers.at("x"), 5);
}

TEST(Gt4, ChainsOfAssignmentsMerge) {
  ProgramBuilder b("chain");
  FuId alu = b.fu("ALU1", "alu");
  b.stmt(alu, "x := p + q");
  b.stmt(alu, "t := s");
  b.stmt(alu, "u := v");
  Cdfg g = b.finish();
  auto res = gt4_merge_assignments(g);
  EXPECT_EQ(res.nodes_merged, 2);
  EXPECT_TRUE(g.find_node_by_label("x := p + q; t := s; u := v").has_value());
}

TEST(Gt4, NeverMergesAcrossBlockBoundaries) {
  Cdfg g = mac_reduce();
  // The IF body's S := S - T is an operation; only moves merge, and none
  // may cross into or out of the IF block.
  auto res = gt4_merge_assignments(g);
  for (NodeId n : g.node_ids()) {
    const Node& node = g.node(n);
    if (node.stmts.size() < 2) continue;
    // All statements of a merged node must have lived in one block.
    EXPECT_TRUE(validate(g).empty());
  }
  (void)res;
}

}  // namespace
}  // namespace adc
