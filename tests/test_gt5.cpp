// GT5 channel elimination (§3.5): multiplexing, multi-way broadcast
// formation, symmetrization (incl. the Figure 7/8/9 mechanics) and the
// paper's 10 -> 5 result for DIFFEQ.

#include <gtest/gtest.h>

#include "frontend/benchmarks.hpp"
#include "frontend/builder.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"
#include "transforms/gt5.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

Cdfg diffeq_pre_gt5() {
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  gt3_relative_timing(g, DelayModel::typical());
  gt4_merge_assignments(g);
  gt2_remove_dominated(g);
  return g;
}

TEST(Gt5, TenChannelsBeforeEliminationAsInFigure5) {
  Cdfg g = diffeq_pre_gt5();
  auto plan = ChannelPlan::derive(g);
  EXPECT_EQ(plan.count_controller_channels(), 10u) << "Figure 5 left side";
}

TEST(Gt5, FiveChannelsAfterEliminationAsInFigure5) {
  Cdfg g = diffeq_pre_gt5();
  auto res = gt5_channel_elimination(g);
  EXPECT_EQ(res.plan.count_controller_channels(), 5u) << "Figure 5 right side";
  EXPECT_EQ(res.plan.count_multiway(), 2u) << "two multi-way channels";
  EXPECT_TRUE(res.plan.validate(g).empty());
}

TEST(Gt5, FinalChannelStructureMatchesThePaper) {
  Cdfg g = diffeq_pre_gt5();
  auto res = gt5_channel_elimination(g);
  int loop_broadcast = 0, alu1_multiway = 0, mul1_to_alu1_mux = 0;
  for (const auto& c : res.plan.channels()) {
    if (c.involves_environment()) continue;
    std::string d = describe(c, g);
    if (d == "ALU2 -> {ALU1,MUL1,MUL2} events=1") ++loop_broadcast;
    if (d == "ALU1 -> {MUL1,MUL2} events=2") ++alu1_multiway;
    if (d == "MUL1 -> {ALU1} events=2") ++mul1_to_alu1_mux;
  }
  EXPECT_EQ(loop_broadcast, 1) << "the LOOP request broadcast";
  EXPECT_EQ(alu1_multiway, 1) << "symmetrized A1b/A1c channel";
  EXPECT_EQ(mul1_to_alu1_mux, 1) << "multiplexed M1a/M1b dones";
}

TEST(Gt5, SymmetrizationAddsOnlyImpliedArcs) {
  Cdfg g = diffeq_pre_gt5();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 9}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(diffeq(), init);
  gt5_channel_elimination(g);
  // The added GT5.3 arc must not change behaviour (it was implied).
  for (unsigned seed = 1; seed <= 10; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold);
  }
}

TEST(Gt5, MultiplexingFigure7Mechanics) {
  // Two channels ALU1 -> MUL1 from sequentially-ordered sources share one
  // wire; two channels MUL1 -> ALU1 likewise: four channels become two.
  ProgramBuilder b("fig7");
  FuId alu = b.fu("ALU1", "alu");
  FuId mul = b.fu("MUL1", "mul");
  b.stmt(alu, "a1 := p + q");
  b.stmt(mul, "m1 := a1 * p");
  b.stmt(alu, "a2 := m1 + q");
  b.stmt(mul, "m2 := a2 * p");
  b.stmt(alu, "z := m2 + q");
  Cdfg g = b.finish();
  auto before = ChannelPlan::derive(g);
  ASSERT_EQ(before.count_controller_channels(), 4u);
  auto res = gt5_channel_elimination(g);
  EXPECT_EQ(res.plan.count_controller_channels(), 2u);
  for (const auto& c : res.plan.channels()) {
    if (c.involves_environment()) continue;
    EXPECT_EQ(c.events.size(), 2u) << describe(c, g);
  }
}

TEST(Gt5, MultiplexRejectsOutOfOrderConsumption) {
  // Receiver waits the two events in the OPPOSITE order of emission: the
  // consumption-key check must reject sharing.
  Cdfg g("bad");
  FuId alu = g.add_fu("ALU1", "alu");
  FuId mul = g.add_fu("MUL1", "mul");
  NodeId a1 = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId a2 = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := p - q")});
  NodeId m1 = g.add_node(NodeKind::kOperation, mul, {parse_rtl("u := y * p")});
  NodeId m2 = g.add_node(NodeKind::kOperation, mul, {parse_rtl("v := x * p")});
  g.set_fu_order(alu, {a1, a2});
  g.set_fu_order(mul, {m1, m2});
  g.add_arc(a1, a2, ArcRole::kScheduling);
  g.add_arc(m1, m2, ArcRole::kScheduling);
  ArcId x_arc = g.add_arc(a1, m2, ArcRole::kDataDep, false, "x");  // 1st emitted, 2nd consumed
  ArcId y_arc = g.add_arc(a2, m1, ArcRole::kDataDep, false, "y");  // 2nd emitted, 1st consumed
  (void)x_arc;
  (void)y_arc;
  ChannelPlan plan = ChannelPlan::derive(g);
  ASSERT_EQ(plan.channels().size(), 2u);
  EXPECT_FALSE(try_multiplex(g, plan, 0, 1))
      << "emission order a1,a2 but consumption order y(x later) is inconsistent";
}

TEST(Gt5, SameSourcePolicyKFirstTargetsIsConservative) {
  Cdfg g = diffeq_pre_gt5();
  Gt5Options aggressive;
  aggressive.same_source = Gt5Options::SameSource::kAll;
  Cdfg g2 = g.clone();
  auto conservative = gt5_channel_elimination(g);
  auto all = gt5_channel_elimination(g2, aggressive);
  EXPECT_LE(all.plan.count_controller_channels(),
            conservative.plan.count_controller_channels());
}

TEST(Gt5, NoneModeKeepsOneWirePerArc) {
  Cdfg g = diffeq_pre_gt5();
  Gt5Options off;
  off.same_source = Gt5Options::SameSource::kNone;
  off.multiplex = false;
  off.symmetrize = false;
  auto res = gt5_channel_elimination(g, off);
  EXPECT_EQ(res.plan.count_controller_channels(), 10u);
}

TEST(Gt5, ConcurrencyReductionFigure8Mechanics) {
  // Direct ALU1 -> ALU2 constraint rerouted through the MUL1 hub, merging
  // with the existing MUL1 -> ALU2 channel.
  ProgramBuilder b("fig8");
  FuId alu1 = b.fu("ALU1", "alu");
  FuId mul = b.fu("MUL1", "mul");
  FuId alu2 = b.fu("ALU2", "alu");
  b.stmt(alu1, "a := p + q");
  b.stmt(mul, "m := a * p");     // ALU1 -> MUL1 (the "existing arc 3")
  b.stmt(alu2, "z1 := m + q");   // MUL1 -> ALU2 ("arc 1")
  b.stmt(alu2, "z2 := z1 + a");  // ALU1 -> ALU2: the direct channel (4old)
  Cdfg g = b.finish();
  NodeId an = *g.find_node_by_label("a := p + q");
  NodeId zn = *g.find_node_by_label("z2 := z1 + a");
  ArcId direct = *g.find_arc(an, zn);

  ChannelPlan plan = ChannelPlan::derive(g);
  std::size_t before = plan.count_controller_channels();
  Gt5Options opts;
  opts.max_period_increase = 1000;  // allow the serialization
  TransformResult stats;
  bool ok = try_concurrency_reduction(g, plan, direct, opts, &stats);
  EXPECT_TRUE(ok);
  EXPECT_EQ(plan.count_controller_channels(), before - 1);
  EXPECT_FALSE(g.arc(direct).alive);
  EXPECT_TRUE(plan.validate(g).empty());

  // Behaviour must be unchanged (the chain implies the old constraint).
  std::map<std::string, std::int64_t> init{{"p", 2}, {"q", 3}};
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  // a = 5, m = 10, z1 = 13, z2 = 18.
  EXPECT_EQ(r.registers.at("z2"), 18);
}

TEST(Gt5, SymmetrizationFigure9Mechanics) {
  // Figure 9: set {1,2} = a's dones to MUL1 and MUL2, set {3} = b's done to
  // MUL1 only.  Symmetrization adds the safe arc 4 (b -> some MUL2 node,
  // already implied), turns both sets into multi-way channels and
  // multiplexes them into ONE wire ALU1 -> {MUL1, MUL2}.
  ProgramBuilder builder("fig9");
  FuId alu = builder.fu("ALU1", "alu");
  FuId mul1 = builder.fu("MUL1", "mul");
  FuId mul2 = builder.fu("MUL2", "mul");
  builder.stmt(alu, "a := p + q");
  builder.stmt(mul1, "u := a * p");   // arc 1: a -> MUL1
  builder.stmt(mul2, "v := a * q");   // arc 2: a -> MUL2
  builder.stmt(alu, "b := a + v");
  builder.stmt(mul1, "w := b * u");   // arc 3: b -> MUL1
  builder.stmt(mul2, "z := v * w");   // MUL1 -> MUL2 dep; makes b -> MUL2 implied
  Cdfg g = builder.finish();

  Gt5Options opts;
  opts.same_source = Gt5Options::SameSource::kAll;  // form a's broadcast
  auto res = gt5_channel_elimination(g, opts);
  // One ALU1 -> {MUL1, MUL2} multi-way channel carrying both a's and b's
  // events.
  int alu_to_both = 0;
  for (const auto& c : res.plan.channels()) {
    if (c.involves_environment()) continue;
    if (g.fu(c.src_fu).name == "ALU1" && c.receivers.size() == 2 &&
        c.events.size() == 2)
      ++alu_to_both;
  }
  EXPECT_EQ(alu_to_both, 1) << "the pair of multi-way channels was multiplexed";
  EXPECT_TRUE(res.plan.validate(g).empty());

  // The added arc must have been safe: behaviour unchanged.
  std::map<std::string, std::int64_t> init{{"p", 2}, {"q", 3}};
  auto gold = run_sequential(g, init);  // post-transform graph, same semantics
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers, gold);
}

TEST(Gt5, PlanValidatesOnAllBenchmarks) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    run_global_transforms(g);
    // run_global_transforms returns the plan; re-run to keep both.
    Cdfg h = make();
    auto res = run_global_transforms(h);
    EXPECT_TRUE(res.plan.validate(h).empty()) << h.name();
  }
}

}  // namespace
}  // namespace adc
