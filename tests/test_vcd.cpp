// VCD tests: the writer must produce parseable IEEE-1364 dumps, and the
// event simulator's waveform capture must show every fired channel
// completing its handshake (transition signalling: the wire toggles and the
// run still converges) plus controller state labels for GTKWave.

#include "trace/vcd.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "sim/event_sim.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

// Minimal VCD reader for validation: header declarations + value changes.
struct ParsedVcd {
  struct Var {
    std::string scope, name, type;
  };
  std::map<std::string, Var> vars;  // code -> declaration
  struct Change {
    std::int64_t time;
    std::string code;
    std::string value;  // "0"/"1" or the string token
  };
  std::vector<Change> changes;
  bool saw_enddefinitions = false;
  bool saw_dumpvars = false;
};

ParsedVcd parse_vcd(const std::string& text) {
  ParsedVcd out;
  std::istringstream is(text);
  std::string line, scope;
  bool in_defs = true, in_dump = false;
  std::int64_t now = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (in_defs) {
      std::istringstream ls(line);
      std::string tok;
      ls >> tok;
      if (tok == "$scope") {
        std::string kind;
        ls >> kind >> scope;
      } else if (tok == "$upscope") {
        scope.clear();
      } else if (tok == "$var") {
        std::string type, width, code, name;
        ls >> type >> width >> code >> name;
        EXPECT_FALSE(out.vars.count(code)) << "duplicate code " << code;
        out.vars[code] = {scope, name, type};
      } else if (tok == "$enddefinitions") {
        out.saw_enddefinitions = true;
        in_defs = false;
      }
      continue;
    }
    if (line == "$dumpvars") {
      out.saw_dumpvars = true;
      in_dump = true;
      continue;
    }
    if (line == "$end") {
      in_dump = false;
      continue;
    }
    if (line[0] == '#') {
      now = std::stoll(line.substr(1));
      continue;
    }
    ParsedVcd::Change c;
    c.time = in_dump ? 0 : now;
    if (line[0] == 's') {
      auto sp = line.rfind(' ');
      c.value = line.substr(1, sp - 1);
      c.code = line.substr(sp + 1);
    } else {
      c.value = line.substr(0, 1);
      c.code = line.substr(1);
    }
    if (!in_dump) out.changes.push_back(c);
    EXPECT_TRUE(out.vars.count(c.code)) << "change for undeclared code " << c.code;
  }
  return out;
}

// --- writer unit ----------------------------------------------------------

TEST(VcdWriter, HeaderDeclarationsAndChanges) {
  VcdWriter w("1ns");
  auto req = w.add_wire("channels", "go", false);
  auto st = w.add_string("ctrl", "state", "s0");
  w.change(req, 5, true);
  w.change(req, 5, true);  // redundant: dropped
  w.change_string(st, 7, "s1");
  w.change(req, 9, false);

  std::ostringstream os;
  w.write(os);
  ParsedVcd v = parse_vcd(os.str());
  EXPECT_TRUE(v.saw_enddefinitions);
  EXPECT_TRUE(v.saw_dumpvars);
  ASSERT_EQ(v.vars.size(), 2u);
  ASSERT_EQ(v.changes.size(), 3u);
  EXPECT_EQ(v.changes[0].time, 5);
  EXPECT_EQ(v.changes[0].value, "1");
  EXPECT_EQ(v.changes[1].value, "s1");
  EXPECT_EQ(v.vars.at(v.changes[1].code).type, "string");
  EXPECT_EQ(v.changes[2].time, 9);
}

TEST(VcdWriter, InitialValueChangesAreSuppressed) {
  VcdWriter w;
  auto a = w.add_wire("s", "a", true);
  w.change(a, 3, true);  // same as initial: no change section at all
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(parse_vcd(os.str()).changes.size(), 0u);
}

TEST(VcdWriter, CodesStayUniquePast94Vars) {
  VcdWriter w;
  for (int i = 0; i < 200; ++i)
    w.add_wire("s", "w" + std::to_string(i), false);
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(parse_vcd(os.str()).vars.size(), 200u);
}

// --- event-simulator capture ----------------------------------------------

TEST(VcdSim, DiffeqWaveformShowsEveryChannelHandshake) {
  Cdfg g = diffeq();
  auto gres = run_global_transforms(g);
  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, gres.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  VcdWriter vcd;
  EventSimOptions opts;
  opts.randomize_delays = false;
  opts.vcd = &vcd;
  auto r = run_event_sim(g, gres.plan, instances, init, opts);
  ASSERT_TRUE(r.completed) << r.error;

  std::ostringstream os;
  vcd.write(os);
  ParsedVcd v = parse_vcd(os.str());

  // One declared wire per channel in the plan.
  std::set<std::string> channel_codes;
  for (const auto& [code, var] : v.vars)
    if (var.scope == "channels") channel_codes.insert(code);
  EXPECT_EQ(channel_codes.size(), gres.plan.channels().size());

  // Times never move backwards, and every fired channel completed at least
  // one full handshake cycle: with transition signalling a request/
  // acknowledge exchange is one toggle on each side, so a completed run
  // shows >= 1 change on every channel wire that participated — and the
  // DIFFEQ loop exercises every channel the plan kept.
  std::int64_t last = 0;
  std::map<std::string, int> toggles;
  for (const auto& c : v.changes) {
    EXPECT_GE(c.time, last);
    last = c.time;
    if (channel_codes.count(c.code)) ++toggles[c.code];
  }
  for (const auto& code : channel_codes)
    EXPECT_GE(toggles[code], 1) << "channel wire " << v.vars.at(code).name
                                << " never toggled";

  // Controller state labels are captured for GTKWave.
  bool saw_state_change = false;
  for (const auto& c : v.changes)
    if (v.vars.at(c.code).type == "string" && v.vars.at(c.code).name == "state")
      saw_state_change = true;
  EXPECT_TRUE(saw_state_change);

  // Waveforms observe, never perturb: same sim without capture agrees.
  auto bare = run_event_sim(g, gres.plan, instances, init,
                            [] {
                              EventSimOptions o;
                              o.randomize_delays = false;
                              return o;
                            }());
  EXPECT_EQ(bare.finish_time, r.finish_time);
  EXPECT_EQ(bare.registers, r.registers);
}

TEST(VcdSim, DeadlockedRunStillWritesTheStall) {
  // An artificial stall: drop one controller instance so its channels never
  // answer — the VCD must still be writable and show the requests that got
  // stuck high with no response.
  Cdfg g = diffeq();
  auto gres = run_global_transforms(g);
  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, gres.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  ASSERT_GT(instances.size(), 1u);
  instances.pop_back();

  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  VcdWriter vcd;
  EventSimOptions opts;
  opts.randomize_delays = false;
  opts.vcd = &vcd;
  auto r = run_event_sim(g, gres.plan, instances, init, opts);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.deadlocked) << r.error;

  std::ostringstream os;
  vcd.write(os);
  ParsedVcd v = parse_vcd(os.str());
  EXPECT_TRUE(v.saw_enddefinitions);
  EXPECT_FALSE(v.changes.empty()) << "the stall left no activity at all";
}

}  // namespace
}  // namespace adc
