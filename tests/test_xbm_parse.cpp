// The textual XBM format: parsing, round trips through to_text(), and the
// role-inference/override rules.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/parse.hpp"
#include "xbm/print.hpp"
#include "xbm/validate.hpp"

namespace adc {
namespace {

TEST(XbmParse, SmallMachine) {
  Xbm m = parse_xbm(R"(name demo
inputs req=0 c=0
outputs ack=0
initial s0
s0 s1 <c+> req+ / ack+
s1 s0 req- / ack-
s0 s0 <c-> req~ /
)");
  EXPECT_EQ(m.name(), "demo");
  EXPECT_EQ(m.state_count(), 2u);
  EXPECT_EQ(m.transition_count(), 3u);
  EXPECT_EQ(m.signal(*m.find_signal("c")).role, SignalRole::kConditional);
}

TEST(XbmParse, RoundTripsEveryExtractedController) {
  for (auto make : {diffeq, gcd, fir4, mac_reduce}) {
    Cdfg g = make();
    auto res = run_global_transforms(g);
    for (auto& c : extract_controllers(g, res.plan)) {
      run_local_transforms(c);
      std::string text = to_text(c.machine);
      Xbm back = parse_xbm(text);
      EXPECT_EQ(back.state_count(), c.machine.state_count()) << c.machine.name();
      EXPECT_EQ(back.transition_count(), c.machine.transition_count()) << c.machine.name();
      EXPECT_EQ(back.input_count(), c.machine.input_count()) << c.machine.name();
      EXPECT_EQ(back.output_count(), c.machine.output_count()) << c.machine.name();
      // The reparsed machine must print identically modulo the role-derived
      // ordering, and must still validate.
      EXPECT_TRUE(validate(back).empty()) << c.machine.name();
    }
  }
}

TEST(XbmParse, DdcMarksSurvive) {
  Xbm m = parse_xbm(R"(name d
inputs a=0 b=0
outputs y=0
initial s0
s0 s1 a~ b~* / y~
s1 s0 b~ / y~
)");
  bool saw_ddc = false;
  for (TransitionId t : m.transition_ids())
    for (const auto& e : m.transition(t).inputs)
      if (e.directed_dont_care) saw_ddc = true;
  EXPECT_TRUE(saw_ddc);
  EXPECT_TRUE(validate(m).empty());
}

TEST(XbmParse, RoleOverride) {
  Xbm m = parse_xbm(R"(name r
role done fu-done
inputs done=0
outputs go=0
initial s0
s0 s0 done+ / go+
)");
  EXPECT_EQ(m.signal(*m.find_signal("done")).role, SignalRole::kFuDone);
}

TEST(XbmParse, InitialValuesParsed) {
  Xbm m = parse_xbm(R"(name i
inputs a=1
outputs y=1
initial s0
s0 s0 a- / y-
)");
  EXPECT_TRUE(m.signal(*m.find_signal("a")).initial_value);
  EXPECT_TRUE(m.signal(*m.find_signal("y")).initial_value);
}

TEST(XbmParse, Errors) {
  EXPECT_THROW(parse_xbm("s0 s1 a+ / y+\n"), std::invalid_argument);  // undeclared
  EXPECT_THROW(parse_xbm("inputs a=0\ns0 s1 a+ y+\n"), std::invalid_argument);  // no '/'
  EXPECT_THROW(parse_xbm("inputs a=0\noutputs y=0\ns0 s1 a? / y+\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_xbm("role x banana\n"), std::invalid_argument);
  EXPECT_THROW(parse_xbm("inputs a=0\noutputs y=0\ns0 s1 a+ / y+*\n"),
               std::invalid_argument);  // ddc on output
}

TEST(XbmParse, CommentsIgnored) {
  Xbm m = parse_xbm(R"(; full line comment
name c
inputs a=0 ; trailing
outputs y=0
initial s0
s0 s0 a~ / y~ ; and here
)");
  EXPECT_EQ(m.transition_count(), 1u);
}

}  // namespace
}  // namespace adc
