// The textual CDFG front-end language.

#include <gtest/gtest.h>

#include "cdfg/validate.hpp"
#include "frontend/benchmarks.hpp"
#include "frontend/parser.hpp"

namespace adc {
namespace {

TEST(Parser, DiffeqSourceElaboratesLikeBuilder) {
  Cdfg from_dsl = parse_program(diffeq_source());
  Cdfg from_builder = diffeq();
  EXPECT_EQ(from_dsl.live_node_count(), from_builder.live_node_count());
  EXPECT_EQ(from_dsl.live_arc_count(), from_builder.live_arc_count());
  EXPECT_EQ(from_dsl.fu_count(), from_builder.fu_count());
  for (NodeId n : from_builder.node_ids())
    EXPECT_TRUE(from_dsl.find_node_by_label(from_builder.node(n).label()).has_value())
        << from_builder.node(n).label();
}

TEST(Parser, CommentsAndWhitespace) {
  Cdfg g = parse_program(R"(program p {
    # a comment
    fu ALU1 : alu;   # trailing comment
    ALU1: x := a + b;  # another
  })");
  EXPECT_EQ(g.name(), "p");
  EXPECT_TRUE(g.find_node_by_label("x := a + b").has_value());
}

TEST(Parser, NestedBlocks) {
  Cdfg g = parse_program(R"(program p {
    fu ALU1 : alu;
    loop c on ALU1 {
      ALU1: d := a > b;
      if d on ALU1 {
        ALU1: a := a - b;
      }
      ALU1: c := a != b;
    }
  })");
  EXPECT_TRUE(validate(g).empty());
  EXPECT_EQ(g.block_ids().size(), 2u);
  EXPECT_TRUE(g.find_unique(NodeKind::kIf).has_value());
  EXPECT_TRUE(g.find_unique(NodeKind::kLoop).has_value());
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_program("program p {\n  fu A : alu;\n  B: x := y;\n}");
    FAIL() << "expected parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("unknown functional unit"), std::string::npos);
  }
}

TEST(Parser, RejectsMissingSemicolon) {
  EXPECT_THROW(parse_program("program p { fu A : alu; A: x := y }"),
               std::invalid_argument);
}

TEST(Parser, RejectsUnknownKeywordShapes) {
  EXPECT_THROW(parse_program("program p { loop c { } }"), std::invalid_argument);
  EXPECT_THROW(parse_program("banana p { }"), std::invalid_argument);
  EXPECT_THROW(parse_program("program p { fu A : alu; loop c on NOPE { } }"),
               std::invalid_argument);
}

TEST(Parser, RejectsNestedFuDeclarations) {
  EXPECT_THROW(parse_program(R"(program p {
    fu A : alu;
    loop c on A { fu B : alu; }
  })"),
               std::invalid_argument);
}

TEST(Parser, RejectsUnterminatedProgram) {
  EXPECT_THROW(parse_program("program p { fu A : alu;"), std::invalid_argument);
}

TEST(Parser, BadRtlInsideStatementReportsLine) {
  try {
    parse_program("program p {\n fu A : alu;\n A: x ::= y;\n}");
    FAIL();
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace adc
