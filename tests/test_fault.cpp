// Fault-injector tests: the plan grammar, deterministic firing (counts,
// after-skips, filters), payload mutation actions and the cooperative
// stall must all behave as docs/ROBUSTNESS.md promises — the chaos CI job
// builds on these semantics.

#include "runtime/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace adc {
namespace {

TEST(FaultInjector, UnarmedInjectorIsInert) {
  FaultInjector fi;
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.check("flow.sim", "gt1"), FaultAction::kNone);
  fi.maybe_fail_or_stall("flow.sim");  // must not throw
  EXPECT_EQ(fi.injected(), 0u);
}

TEST(FaultInjector, GrammarParsesAllModifiers) {
  FaultInjector fi;
  fi.configure("flow.sim[gt1; gt2]=stall(250):3@2%50;seed=42");
  EXPECT_TRUE(fi.armed());
  // Rejected plans: missing action, unknown action, bad percentage.
  EXPECT_THROW(fi.configure("flow.sim"), std::invalid_argument);
  EXPECT_THROW(fi.configure("flow.sim=explode"), std::invalid_argument);
  EXPECT_THROW(fi.configure("flow.sim=fail%xyz"), std::invalid_argument);
  // An empty spec clears the plan.
  fi.configure("");
  EXPECT_FALSE(fi.armed());
}

TEST(FaultInjector, SemicolonInsideFilterIsNotASeparator) {
  FaultInjector fi;
  fi.configure("flow.controllers[gt1; gt3]=fail");
  EXPECT_EQ(fi.check("flow.controllers", "gt1; gt3; lt"), FaultAction::kFail);
  EXPECT_EQ(fi.check("flow.controllers", "gt1; gt2; lt"), FaultAction::kNone);
}

TEST(FaultInjector, CountLimitsFirings) {
  FaultInjector fi;
  fi.configure("cache.compute=fail:2");
  EXPECT_EQ(fi.check("cache.compute"), FaultAction::kFail);
  EXPECT_EQ(fi.check("cache.compute"), FaultAction::kFail);
  EXPECT_EQ(fi.check("cache.compute"), FaultAction::kNone);
  EXPECT_EQ(fi.injected(), 2u);
}

TEST(FaultInjector, AfterSkipsLeadingHits) {
  FaultInjector fi;
  fi.configure("disk.get=fail:1@2");
  EXPECT_EQ(fi.check("disk.get"), FaultAction::kNone);
  EXPECT_EQ(fi.check("disk.get"), FaultAction::kNone);
  EXPECT_EQ(fi.check("disk.get"), FaultAction::kFail);
  EXPECT_EQ(fi.check("disk.get"), FaultAction::kNone);
}

TEST(FaultInjector, SiteMatchIsExactAndCountersArePrefixed) {
  FaultInjector fi;
  fi.configure("disk.put=drop");
  EXPECT_EQ(fi.check("disk.put.payload"), FaultAction::kNone);
  EXPECT_EQ(fi.check("disk.put"), FaultAction::kDrop);
  EXPECT_EQ(fi.injected_at("disk."), 1u);
  EXPECT_EQ(fi.injected_at("flow."), 0u);
}

TEST(FaultInjector, DeterministicWithoutPercent) {
  // Without '%' the decision is a pure function of the hit index: two
  // injectors fed the same sequence agree exactly.
  FaultInjector a, b;
  a.configure("flow.sim=fail:3@1");
  b.configure("flow.sim=fail:3@1");
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(a.check("flow.sim"), b.check("flow.sim")) << "hit " << i;
}

TEST(FaultInjector, SeededPercentStreamIsReproducible) {
  auto draw = [](std::uint64_t seed) {
    FaultInjector fi;
    fi.configure("cache.compute=fail%50;seed=" + std::to_string(seed));
    std::string decisions;
    for (int i = 0; i < 32; ++i)
      decisions += fi.check("cache.compute") == FaultAction::kFail ? '1' : '0';
    return decisions;
  };
  EXPECT_EQ(draw(7), draw(7));
  EXPECT_NE(draw(7), draw(8));  // a different seed moves the stream
}

TEST(FaultInjector, MaybeFailOrStallThrowsWithSiteName) {
  FaultInjector fi;
  fi.configure("flush.artifact=fail");
  try {
    fi.maybe_fail_or_stall("flush.artifact", "trace");
    FAIL() << "expected FaultInjectedError";
  } catch (const FaultInjectedError& e) {
    EXPECT_EQ(e.site(), "flush.artifact");
  }
}

TEST(FaultInjector, StallObservesCancelToken) {
  FaultInjector fi;
  fi.configure("flow.sim=stall(30000)");
  CancelToken token;
  token.request("test cancel");
  auto t0 = std::chrono::steady_clock::now();
  // A pre-tripped token must cut the 30 s stall to (at most) one chunk,
  // surfacing as the cancellation the watchdog path relies on.
  EXPECT_THROW(fi.maybe_fail_or_stall("flow.sim", "", &token), CancelledError);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_LT(ms, 5000);
}

TEST(FaultInjector, PayloadActionsMutateInPlace) {
  FaultInjector fi;
  const std::string original(64, 'x');

  fi.configure("disk.put.payload=corrupt");
  std::string corrupted = original;
  EXPECT_EQ(fi.mutate_payload("disk.put.payload", corrupted),
            FaultAction::kCorrupt);
  EXPECT_EQ(corrupted.size(), original.size());
  EXPECT_NE(corrupted, original);

  fi.configure("disk.put.payload=truncate");
  std::string truncated = original;
  EXPECT_EQ(fi.mutate_payload("disk.put.payload", truncated),
            FaultAction::kTruncate);
  EXPECT_LT(truncated.size(), original.size());

  fi.configure("disk.put.payload=shortwrite");
  std::string short_written = original;
  EXPECT_EQ(fi.mutate_payload("disk.put.payload", short_written),
            FaultAction::kShortWrite);
  EXPECT_LE(short_written.size(), 7u);
}

TEST(FaultInjector, ResetClearsPlanAndCounters) {
  FaultInjector fi;
  fi.configure("flow.sim=fail");
  EXPECT_EQ(fi.check("flow.sim"), FaultAction::kFail);
  fi.reset();
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.check("flow.sim"), FaultAction::kNone);
  EXPECT_EQ(fi.injected(), 0u);
}

}  // namespace
}  // namespace adc
