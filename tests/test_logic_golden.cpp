// Golden gate-level equivalence: the optimized minimizer (word-parallel
// cube kernels, parallel per-function covering, cover memo) must reproduce
// the seed minimizer's product/literal counts and feasibility verdicts
// byte-for-byte across the whole benchmark library.
//
// tests/data/logic_golden.txt was captured from the seed implementation:
// the full 32-recipe DIFFEQ ablation grid plus the default recipe of every
// other builtin benchmark.  Any drift — a changed candidate order, a
// different covering tie-break, a memo replay that differs from a fresh
// run — fails here with the exact point named.

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/memo.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "runtime/flow.hpp"
#include "runtime/thread_pool.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

struct GoldController {
  std::string name;
  std::size_t products = 0;
  std::size_t literals = 0;
  bool feasible = true;
};

struct GoldPoint {
  std::string benchmark;
  std::string script;
  std::string status;  // "ok" / "deadlock"
  std::size_t products = 0;
  std::size_t literals = 0;
  std::vector<GoldController> controllers;
};

std::vector<std::string> split(const std::string& line, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(line);
  std::string field;
  while (std::getline(ss, field, sep)) out.push_back(field);
  return out;
}

std::vector<GoldPoint> load_golden() {
  std::ifstream in(std::string(ADC_TEST_DATA_DIR) + "/logic_golden.txt");
  EXPECT_TRUE(in.is_open()) << "missing tests/data/logic_golden.txt";
  std::vector<GoldPoint> points;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    auto f = split(line, '|');
    if (f[0] == "point") {
      EXPECT_EQ(f.size(), 6u) << line;
      GoldPoint p;
      p.benchmark = f[1];
      p.script = f[2];
      p.status = f[3];
      p.products = std::stoul(f[4]);
      p.literals = std::stoul(f[5]);
      points.push_back(std::move(p));
    } else {
      EXPECT_EQ(f.size(), 6u) << line;
      EXPECT_FALSE(points.empty()) << "controller line before any point";
      if (points.empty()) continue;
      GoldController c;
      c.name = f[2];
      c.products = std::stoul(f[3]);
      c.literals = std::stoul(f[4]);
      c.feasible = f[5] == "true";
      points.back().controllers.push_back(std::move(c));
    }
  }
  EXPECT_FALSE(points.empty());
  return points;
}

// The whole library through one pooled executor — the exact production
// configuration (fan-out on, memo on) against every golden number.  Event
// simulation runs only for the points whose golden status says it matters
// (the four E8 deadlock corners); products/literals are sim-independent.
TEST(LogicGolden, FullLibraryMatchesSeedCounts) {
  auto points = load_golden();
  ThreadPool pool(4);
  FlowExecutor exec(&pool);
  for (const auto& gold : points) {
    const BuiltinBenchmark* b = find_builtin(gold.benchmark);
    ASSERT_NE(b, nullptr) << gold.benchmark;
    FlowRequest req = make_builtin_request(*b, gold.script);
    req.simulate = gold.status == "deadlock";
    FlowPoint p = exec.run(req);
    std::string at = gold.benchmark + " [" + gold.script + "]";
    if (gold.status == "deadlock") {
      EXPECT_EQ(p.status, FlowStatus::kDeadlock) << at;
    } else {
      EXPECT_EQ(gold.status, "ok") << at;
      EXPECT_TRUE(p.error.empty()) << at << ": " << p.error;
    }
    EXPECT_EQ(p.products, gold.products) << at;
    EXPECT_EQ(p.literals, gold.literals) << at;
    ASSERT_EQ(p.controllers.size(), gold.controllers.size()) << at;
    for (std::size_t i = 0; i < gold.controllers.size(); ++i) {
      const auto& gc = gold.controllers[i];
      EXPECT_EQ(p.controllers[i].name, gc.name) << at;
      EXPECT_EQ(p.controllers[i].products, gc.products) << at << " " << gc.name;
      EXPECT_EQ(p.controllers[i].literals, gc.literals) << at << " " << gc.name;
      EXPECT_EQ(p.controllers[i].feasible, gc.feasible) << at << " " << gc.name;
    }
  }
  // Sharing across the grid means the memo must actually have replayed.
  EXPECT_GT(exec.logic_memo().stats().hits, 0u);
}

// Serial, pooled and memo-replayed synthesis must agree product for
// product, not just in the counts.
TEST(LogicGolden, SerialParallelAndMemoizedCoversAreIdentical) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  auto controllers = extract_controllers(g, res.plan);
  for (auto& c : controllers) run_local_transforms(c);

  ThreadPool pool(4);
  LogicMemo memo;
  for (const auto& c : controllers) {
    SynthesisOptions serial;
    LogicSynthesisResult r0 = synthesize_logic(c, serial);

    SynthesisOptions pooled;
    pooled.pool = &pool;
    LogicSynthesisResult r1 = synthesize_logic(c, pooled);

    SynthesisOptions memo_cold;
    memo_cold.cover.memo = &memo;
    LogicSynthesisResult r2 = synthesize_logic(c, memo_cold);  // fills
    LogicSynthesisResult r3 = synthesize_logic(c, memo_cold);  // replays

    for (const LogicSynthesisResult* r : {&r1, &r2, &r3}) {
      ASSERT_EQ(r->functions.size(), r0.functions.size());
      for (std::size_t fi = 0; fi < r0.functions.size(); ++fi) {
        EXPECT_EQ(r->functions[fi].name, r0.functions[fi].name);
        ASSERT_EQ(r->functions[fi].products.size(),
                  r0.functions[fi].products.size())
            << r0.functions[fi].name;
        for (std::size_t pi = 0; pi < r0.functions[fi].products.size(); ++pi)
          EXPECT_TRUE(r->functions[fi].products[pi] ==
                      r0.functions[fi].products[pi])
              << r0.functions[fi].name << " product " << pi;
      }
      EXPECT_EQ(r->issues, r0.issues);
    }
  }
  EXPECT_GT(memo.stats().hits, 0u);
}

}  // namespace
}  // namespace adc
