// Channel-sharing legality analysis (consumption-key ordering).

#include <gtest/gtest.h>

#include "frontend/benchmarks.hpp"
#include "frontend/builder.hpp"
#include "transforms/concurrency.hpp"
#include "transforms/global.hpp"
#include "transforms/gt5.hpp"

namespace adc {
namespace {

TEST(Concurrency, SchedulePositions) {
  Cdfg g = diffeq();
  FuId alu1 = *g.find_fu("ALU1");
  const auto& order = g.fu_order(alu1);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(schedule_position(g, order[i]).value(), static_cast<int>(i));
  NodeId start = *g.find_unique(NodeKind::kStart);
  EXPECT_FALSE(schedule_position(g, start).has_value());
}

TEST(Concurrency, SingleEventChannelAlwaysConsistent) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  for (const auto& c : plan.channels())
    EXPECT_TRUE(channel_order_consistent(g, c)) << describe(c, g);
}

TEST(Concurrency, MergedEventsCombineSameSource) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  // Find two channels sourced at the LOOP node.
  NodeId loop = *g.find_unique(NodeKind::kLoop);
  std::vector<const Channel*> loops;
  for (const auto& c : plan.channels())
    if (!c.involves_environment() && c.events.front().source == loop)
      loops.push_back(&c);
  ASSERT_GE(loops.size(), 2u);
  auto merged = merged_events(g, *loops[0], *loops[1]);
  ASSERT_EQ(merged.size(), 1u) << "same source node = one broadcast event";
  EXPECT_EQ(merged[0].arcs.size(), 2u);
}

TEST(Concurrency, CrossIterationKeysOrderAfterForwardKeys) {
  // MUL1 -> ALU1 in the GT-optimized DIFFEQ: M1a's done consumed this
  // iteration, M1b's done consumed by U := U - M1 later the same
  // iteration; merging is legal (the paper's Figure 5 multiplexing).
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  gt2_remove_dominated(g);
  gt3_relative_timing(g, DelayModel::typical());
  auto plan = ChannelPlan::derive(g);
  std::vector<std::size_t> m1_to_a1;
  for (std::size_t i = 0; i < plan.channels().size(); ++i) {
    const auto& c = plan.channels()[i];
    if (c.involves_environment()) continue;
    if (g.fu(c.src_fu).name == "MUL1" && c.receivers.size() == 1 &&
        g.fu(c.receivers[0]).name == "ALU1")
      m1_to_a1.push_back(i);
  }
  ASSERT_EQ(m1_to_a1.size(), 2u);
  EXPECT_TRUE(
      can_multiplex(g, plan.channels()[m1_to_a1[0]], plan.channels()[m1_to_a1[1]]));
}

TEST(Concurrency, DifferentSourceFuRejected) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  const Channel* from_alu1 = nullptr;
  const Channel* from_mul1 = nullptr;
  for (const auto& c : plan.channels()) {
    if (c.involves_environment()) continue;
    if (g.fu(c.src_fu).name == "ALU1") from_alu1 = &c;
    if (g.fu(c.src_fu).name == "MUL1") from_mul1 = &c;
  }
  ASSERT_TRUE(from_alu1 && from_mul1);
  EXPECT_FALSE(can_multiplex(g, *from_alu1, *from_mul1));
}

TEST(Concurrency, DifferentReceiverSetsRejected) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  // LOOP -> ALU1 and LOOP -> MUL1: same source FU, different receivers.
  NodeId loop = *g.find_unique(NodeKind::kLoop);
  std::vector<const Channel*> loops;
  for (const auto& c : plan.channels())
    if (!c.involves_environment() && c.events.front().source == loop)
      loops.push_back(&c);
  ASSERT_GE(loops.size(), 2u);
  EXPECT_FALSE(can_multiplex(g, *loops[0], *loops[1]))
      << "multiplex requires identical receiver sets (symmetrize first)";
}

TEST(Concurrency, ConditionalContextsMustAgree) {
  // An event emitted inside an IF body cannot share a wire with one
  // emitted unconditionally: transition counting would break.
  Cdfg g("ifctx");
  FuId alu = g.add_fu("A1", "alu");
  FuId mul = g.add_fu("M1", "mul");
  NodeId ifn = g.add_node(NodeKind::kIf, alu);
  g.node(ifn).cond_reg = "c";
  BlockId blk = g.add_block(NodeKind::kIf, ifn, NodeId::invalid());
  NodeId inner = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")}, blk);
  NodeId endif = g.add_node(NodeKind::kEndIf, alu);
  g.block(blk).end = endif;
  NodeId outer = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := p - q")});
  NodeId m1 = g.add_node(NodeKind::kOperation, mul, {parse_rtl("u := x * p")});
  NodeId m2 = g.add_node(NodeKind::kOperation, mul, {parse_rtl("v := y * p")});
  g.set_fu_order(alu, {ifn, inner, endif, outer});
  g.set_fu_order(mul, {m1, m2});
  g.add_arc(ifn, inner, ArcRole::kControl);
  g.add_arc(inner, endif, ArcRole::kControl);
  g.add_arc(endif, outer, ArcRole::kScheduling);
  g.add_arc(m1, m2, ArcRole::kScheduling);
  ArcId in_arc = g.add_arc(inner, m1, ArcRole::kDataDep, false, "x");
  ArcId out_arc = g.add_arc(outer, m2, ArcRole::kDataDep, false, "y");
  (void)in_arc;
  (void)out_arc;
  ChannelPlan plan = ChannelPlan::derive(g);
  ASSERT_EQ(plan.channels().size(), 2u);
  EXPECT_FALSE(try_multiplex(g, plan, 0, 1));
}

}  // namespace
}  // namespace adc
