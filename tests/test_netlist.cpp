// Netlist emission and functional (dynamic) hazard checking of the
// synthesized two-level networks.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/netlist.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

std::vector<ExtractedController> optimized(Cdfg& g) {
  auto res = run_global_transforms(g);
  auto cs = extract_controllers(g, res.plan);
  for (auto& c : cs) run_local_transforms(c);
  return cs;
}

TEST(Netlist, VerilogMentionsEverySignal) {
  Cdfg g = diffeq();
  auto cs = optimized(g);
  for (auto& c : cs) {
    auto r = synthesize_logic(c);
    std::string v = to_verilog(r, c.machine.name());
    EXPECT_NE(v.find("module"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
    for (const auto& n : r.machine.output_names)
      EXPECT_NE(v.find(n), std::string::npos) << c.machine.name() << "/" << n;
  }
}

TEST(Netlist, EquationsOnePerFunction) {
  Cdfg g = diffeq();
  auto cs = optimized(g);
  auto r = synthesize_logic(cs[0]);
  std::string e = to_equations(r);
  std::size_t lines = static_cast<std::size_t>(std::count(e.begin(), e.end(), '\n'));
  EXPECT_EQ(lines, r.functions.size());
}

TEST(Netlist, DiffeqNetworksReplayTheirSpecs) {
  // The strongest check on the logic backend: the synthesized AND-OR
  // network, with feedback, must walk the concretized machine without
  // output glitches or premature state changes, for adversarial input
  // orderings.
  Cdfg g = diffeq();
  for (auto& c : optimized(g)) {
    auto r = synthesize_logic(c);
    auto chk = check_netlist(r);
    EXPECT_TRUE(chk.ok) << c.machine.name() << ": "
                        << (chk.violations.empty() ? "" : chk.violations[0]);
    EXPECT_GT(chk.transitions_checked, 0);
  }
}

TEST(Netlist, AllBenchmarksReplay) {
  for (auto make : {gcd, fir4, mac_reduce, ewf_lite}) {
    Cdfg g = make();
    for (auto& c : optimized(g)) {
      auto r = synthesize_logic(c);
      NetlistCheckOptions o;
      o.walks = 8;
      o.steps_per_walk = 40;
      auto chk = check_netlist(r, o);
      EXPECT_TRUE(chk.ok) << g.name() << "/" << c.machine.name() << ": "
                          << (chk.violations.empty() ? "" : chk.violations[0]);
    }
  }
}

TEST(Netlist, UnoptimizedControllersReplayToo) {
  Cdfg g = diffeq();
  auto plan = ChannelPlan::derive(g);
  for (auto& c : extract_controllers(g, plan)) {
    auto r = synthesize_logic(c);
    NetlistCheckOptions o;
    o.walks = 5;
    auto chk = check_netlist(r, o);
    EXPECT_TRUE(chk.ok) << c.machine.name() << ": "
                        << (chk.violations.empty() ? "" : chk.violations[0]);
  }
}

TEST(Netlist, DetectsABrokenCover) {
  // Damage a cover on purpose: the checker must notice.
  Cdfg g = diffeq();
  auto cs = optimized(g);
  auto r = synthesize_logic(cs[0]);
  ASSERT_FALSE(r.functions.empty());
  // Drop all products of the busiest function.
  std::size_t busiest = 0;
  for (std::size_t i = 0; i < r.functions.size(); ++i)
    if (r.functions[i].products.size() > r.functions[busiest].products.size()) busiest = i;
  r.functions[busiest].products.clear();
  auto chk = check_netlist(r);
  EXPECT_FALSE(chk.ok);
}

}  // namespace
}  // namespace adc
