// Offset-aware reachability, dominance and topological order.

#include <gtest/gtest.h>

#include "cdfg/analysis.hpp"
#include "frontend/benchmarks.hpp"

namespace adc {
namespace {

TEST(Analysis, MinPathOffsetForwardChain) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId b = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + q")});
  NodeId c = g.add_node(NodeKind::kOperation, alu, {parse_rtl("z := y + q")});
  g.set_fu_order(alu, {a, b, c});
  g.add_arc(a, b, ArcRole::kDataDep);
  g.add_arc(b, c, ArcRole::kDataDep);
  EXPECT_EQ(min_path_offset(g, a, c).value(), 0);
  ReachOptions no_wrap;
  no_wrap.include_fu_wrap = false;
  EXPECT_FALSE(min_path_offset(g, c, a, no_wrap).has_value());
}

TEST(Analysis, WrapGivesOffsetOnePathBack) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId b = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + q")});
  g.set_fu_order(alu, {a, b});
  g.add_arc(a, b, ArcRole::kScheduling);
  // The controller cycles: b(k) precedes a(k+1).
  auto d = min_path_offset(g, b, a);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, 1);
}

TEST(Analysis, BackwardArcCountsAsOffsetOne) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  FuId mul = g.add_fu("M", "mul");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId m = g.add_node(NodeKind::kOperation, mul, {parse_rtl("y := x * q")});
  g.set_fu_order(alu, {a});
  g.set_fu_order(mul, {m});
  g.add_arc(a, m, ArcRole::kDataDep);
  g.add_arc(m, a, ArcRole::kRegAlloc, /*backward=*/true);
  EXPECT_EQ(min_path_offset(g, m, a).value(), 1);
  EXPECT_EQ(min_path_offset(g, a, a).value(), 0);  // trivial
}

TEST(Analysis, DominatedByTwoArcPath) {
  // The paper's §3.2 example: arc 5 implied by the path of arcs 6 and 7.
  Cdfg g = diffeq();
  NodeId m1a = *g.find_node_by_label("M1 := U * X1");
  NodeId a1b = *g.find_node_by_label("A := Y + M1");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  ArcId direct = *g.find_arc(m1a, a1c);  // regalloc on U
  ASSERT_TRUE(g.find_arc(m1a, a1b).has_value());
  ASSERT_TRUE(g.find_arc(a1b, a1c).has_value());
  EXPECT_TRUE(is_dominated(g, direct));
}

TEST(Analysis, NotDominatedWhenPathMissing) {
  Cdfg g = diffeq();
  NodeId m1a = *g.find_node_by_label("M1 := U * X1");
  NodeId a1b = *g.find_node_by_label("A := Y + M1");
  ArcId arc = *g.find_arc(m1a, a1b);
  EXPECT_FALSE(is_dominated(g, arc));
}

TEST(Analysis, IsImpliedRespectsOffsetBudget) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  FuId mul = g.add_fu("M", "mul");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId m = g.add_node(NodeKind::kOperation, mul, {parse_rtl("y := x * q")});
  g.set_fu_order(alu, {a});
  g.set_fu_order(mul, {m});
  g.add_arc(a, m, ArcRole::kDataDep, /*backward=*/true);  // offset 1 path
  EXPECT_FALSE(is_implied(g, a, m, 0));
  EXPECT_TRUE(is_implied(g, a, m, 1));
  EXPECT_TRUE(is_implied(g, a, m, 2));
}

TEST(Analysis, ForwardTopoOrderCoversAllLiveNodes) {
  Cdfg g = diffeq();
  auto order = forward_topo_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(order->size(), g.live_node_count());
  // Dependencies come before dependents.
  auto pos = [&](NodeId n) {
    return std::find(order->begin(), order->end(), n) - order->begin();
  };
  for (ArcId aid : g.arc_ids()) {
    const Arc& a = g.arc(aid);
    if (!a.backward) {
      EXPECT_LT(pos(a.src), pos(a.dst));
    }
  }
}

TEST(Analysis, ForwardTopoOrderDetectsCycle) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId b = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + q")});
  g.set_fu_order(alu, {a, b});
  g.add_arc(a, b, ArcRole::kDataDep);
  g.add_arc(b, a, ArcRole::kDataDep);
  EXPECT_FALSE(forward_topo_order(g).has_value());
}

TEST(Analysis, InBlockWalksNesting) {
  Cdfg g = mac_reduce();
  // The IF body statement is inside both the IF block and the loop block.
  NodeId body = *g.find_node_by_label("S := S - T");
  int enclosing = 0;
  for (BlockId b : g.block_ids())
    if (in_block(g, body, b)) ++enclosing;
  EXPECT_EQ(enclosing, 2);
}

TEST(Analysis, FuNodesInBlockFiltersByBlock) {
  Cdfg g = diffeq();
  BlockId loop = g.block_ids()[0];
  FuId alu2 = *g.find_fu("ALU2");
  auto inside = fu_nodes_in_block(g, alu2, loop);
  // LOOP and ENDLOOP sit in the enclosing scope, the four ops inside.
  EXPECT_EQ(inside.size(), 4u);
}

TEST(Analysis, ExcludedArcIgnoredInReachability) {
  Cdfg g("c");
  FuId alu = g.add_fu("A", "alu");
  NodeId a = g.add_node(NodeKind::kOperation, alu, {parse_rtl("x := p + q")});
  NodeId b = g.add_node(NodeKind::kOperation, alu, {parse_rtl("y := x + q")});
  g.set_fu_order(alu, {a, b});
  ArcId only = g.add_arc(a, b, ArcRole::kDataDep);
  ReachOptions opts;
  opts.exclude = only;
  opts.include_fu_wrap = false;
  EXPECT_FALSE(min_path_offset(g, a, b, opts).has_value());
}

}  // namespace
}  // namespace adc
