// State assignment: the hypercube embedding search and its fallback.

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/encoding.hpp"
#include "ltrans/local.hpp"
#include "transforms/pipeline.hpp"

namespace adc {
namespace {

// A ring machine of the given length over one toggling wire pair (even
// lengths close their phases).
ConcreteMachine ring_machine(int n) {
  Xbm m("ring");
  SignalId a = m.add_signal("a", SignalKind::kInput, SignalRole::kGlobalReady);
  SignalId y = m.add_signal("y", SignalKind::kOutput, SignalRole::kGlobalReady);
  std::vector<StateId> states;
  for (int i = 0; i < n; ++i) states.push_back(m.add_state());
  m.set_initial(states[0]);
  for (int i = 0; i < n; ++i)
    m.add_transition(states[static_cast<std::size_t>(i)],
                     states[static_cast<std::size_t>((i + 1) % n)], {toggle(a)},
                     {toggle(y)});
  return concretize(m);
}

class RingEncoding : public ::testing::TestWithParam<int> {};

TEST_P(RingEncoding, EvenRingsEmbedDistanceOne) {
  // Even-length cycles embed in the hypercube: every transition must be a
  // single-bit change.
  auto cm = ring_machine(GetParam());
  auto enc = assign_codes(cm);
  EXPECT_EQ(enc.distance1, enc.total) << "cycle of length " << cm.states.size();
}

INSTANTIATE_TEST_SUITE_P(EvenRings, RingEncoding, ::testing::Values(2, 4, 6, 8, 12, 16));

TEST(Encoding, CodesAlwaysUniqueAndInRange) {
  for (int n : {2, 3, 5, 9, 17}) {
    auto cm = ring_machine(n % 2 ? n + 1 : n);  // keep phases closable
    auto enc = assign_codes(cm);
    std::set<std::uint32_t> codes(enc.code.begin(), enc.code.end());
    EXPECT_EQ(codes.size(), cm.states.size());
    for (auto c : codes) EXPECT_LT(c, 1u << enc.bits);
  }
}

TEST(Encoding, DiffeqControllersMostlyDistanceOne) {
  Cdfg g = diffeq();
  auto res = run_global_transforms(g);
  for (auto& c : extract_controllers(g, res.plan)) {
    run_local_transforms(c);
    auto cm = concretize(c.machine, &c.bindings);
    auto enc = assign_codes(cm);
    EXPECT_GE(enc.distance1 * 10, enc.total * 8)
        << c.machine.name() << ": " << enc.distance1 << "/" << enc.total;
  }
}

TEST(Encoding, BitCountIsMinimal) {
  auto cm = ring_machine(8);
  auto enc = assign_codes(cm);
  EXPECT_EQ(enc.bits, 3u);
  auto cm2 = ring_machine(16);
  EXPECT_EQ(assign_codes(cm2).bits, 4u);
}

}  // namespace
}  // namespace adc
