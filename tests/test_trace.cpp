// Trace-layer tests: the span tracer must produce well-formed Chrome
// trace_event JSON (validated with the repo's own parser) with balanced
// B/E pairs per track even under a multi-threaded DSE batch, stage spans
// must carry their cache disposition, and the structured logger must honour
// levels and render fields.

#include "trace/tracer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>

#include "report/json_parse.hpp"
#include "runtime/flow.hpp"
#include "trace/flush.hpp"
#include "trace/log.hpp"

namespace adc {
namespace {

// --- tracer unit ----------------------------------------------------------

TEST(Tracer, SpansBeginAndEndOnOneTrack) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    ScopedSpan inner(&tracer, "inner", "test");
    inner.arg("cache", "miss");
  }
  auto tracks = tracer.tracks();
  ASSERT_EQ(tracks.size(), 1u);
  auto events = tracer.events_for_track(tracks[0]);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kBegin);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  // Inner ends before outer; args land on the end event.
  EXPECT_EQ(events[2].phase, TraceEvent::Phase::kEnd);
  EXPECT_EQ(events[2].name, "inner");
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].first, "cache");
  EXPECT_EQ(events[2].args[0].second, "miss");
  EXPECT_EQ(events[3].name, "outer");
}

TEST(Tracer, TimestampsAreMonotonicPerTrack) {
  Tracer tracer;
  for (int i = 0; i < 10; ++i) ScopedSpan span(&tracer, "s", "test");
  auto events = tracer.events_for_track(tracer.tracks()[0]);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].ts_micros, events[i - 1].ts_micros);
}

TEST(Tracer, NullTracerIsANoOp) {
  ScopedSpan span(nullptr, "ignored");
  span.arg("k", "v");
  // Nothing to assert beyond "does not crash".
}

TEST(Tracer, CounterAndInstantEvents) {
  Tracer tracer;
  tracer.counter("queue", 3);
  tracer.instant("deadlock", "sim", {{"benchmark", "x"}});
  auto events = tracer.events_for_track(tracer.tracks()[0]);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TraceEvent::Phase::kCounter);
  EXPECT_EQ(events[0].counter_value, 3);
  EXPECT_EQ(events[1].phase, TraceEvent::Phase::kInstant);
}

// --- Chrome JSON schema under a multi-threaded batch ----------------------

JsonValue traced_batch(Tracer& tracer) {
  const BuiltinBenchmark* b = find_builtin("mac_reduce");
  std::vector<FlowRequest> reqs;
  for (const char* script : {"lt", "gt2; gt5; lt", "gt1; gt2; gt4; gt2; gt5; lt"})
    reqs.push_back(make_builtin_request(*b, script));
  ThreadPool pool(4);
  FlowExecutor::Options opts;
  opts.tracer = &tracer;
  FlowExecutor exec(&pool, opts);
  auto points = exec.run_all(reqs);
  for (const auto& p : points) EXPECT_TRUE(p.ok) << p.script << ": " << p.error;
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  return parse_json(os.str());
}

TEST(ChromeTrace, WellFormedWithBalancedSpansPerTrack) {
  Tracer tracer;
  JsonValue doc = traced_batch(tracer);
  ASSERT_TRUE(doc.is_object());
  const JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.array.empty());

  std::map<int, int> depth;  // tid -> open span count
  std::map<int, std::uint64_t> last_ts;
  for (const JsonValue& ev : events.array) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_TRUE(ev.at("name").is_string());
    EXPECT_TRUE(ev.at("ts").is_number());
    EXPECT_TRUE(ev.at("pid").is_number());
    const std::string& ph = ev.at("ph").string;
    int tid = static_cast<int>(ev.at("tid").number);
    auto ts = static_cast<std::uint64_t>(ev.at("ts").number);
    EXPECT_GE(ts, last_ts[tid]) << "time moved backwards on track " << tid;
    last_ts[tid] = ts;
    if (ph == "B") ++depth[tid];
    else if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "end without begin on track " << tid;
    } else {
      EXPECT_TRUE(ph == "C" || ph == "i") << "unexpected phase " << ph;
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced track " << tid;
}

TEST(ChromeTrace, StageSpansCarryCacheDisposition) {
  Tracer tracer;
  JsonValue doc = traced_batch(tracer);
  std::map<std::string, int> cache_args;  // "hit"/"miss" -> count
  std::map<std::string, int> span_names;
  for (const JsonValue& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string == "B") ++span_names[ev.at("name").string];
    if (ev.at("ph").string != "E") continue;
    if (const JsonValue* args = ev.find("args"))
      if (const JsonValue* cache = args->find("cache")) ++cache_args[cache->string];
  }
  // Every flow stage appears as a span...
  for (const char* stage : {"flow.run", "frontend", "global", "controllers", "sim"})
    EXPECT_GT(span_names[stage], 0) << stage;
  EXPECT_GT(span_names["gt2"], 0) << "per-step global spans";
  // ...and the cache disposition annotations include both outcomes (three
  // recipes share the frontend, so at least one hit is guaranteed).
  EXPECT_GT(cache_args["miss"], 0);
  EXPECT_GT(cache_args["hit"], 0);
}

TEST(ChromeTrace, GaugesAreSampledAsCounterEvents) {
  Tracer tracer;
  JsonValue doc = traced_batch(tracer);
  std::map<std::string, int> counters;
  for (const JsonValue& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string != "C") continue;
    EXPECT_TRUE(ev.at("args").at("value").is_number());
    ++counters[ev.at("name").string];
  }
  EXPECT_GT(counters["cache.entries"], 0);
  EXPECT_GT(counters["cache.bytes"], 0);
  EXPECT_GT(counters["pool.pending"], 0);
}

// --- structured logger ----------------------------------------------------

TEST(Log, LevelsGateEmission) {
  std::string captured;
  log_capture_to(&captured);
  LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  ADC_LOG_INFO("test", "hidden");
  ADC_LOG_WARN("test", "visible", {{"code", 7}});
  set_log_level(before);
  log_capture_to(nullptr);
  EXPECT_EQ(captured.find("hidden"), std::string::npos);
  EXPECT_NE(captured.find("visible"), std::string::npos);
  EXPECT_NE(captured.find("code=7"), std::string::npos);
  EXPECT_NE(captured.find("[warn"), std::string::npos);
}

TEST(Log, FieldRenderingQuotesSpaces) {
  std::string captured;
  log_capture_to(&captured);
  LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  ADC_LOG_INFO("test", "msg", {{"k", "two words"}, {"flag", true}});
  set_log_level(before);
  log_capture_to(nullptr);
  EXPECT_NE(captured.find("k=\"two words\""), std::string::npos);
  EXPECT_NE(captured.find("flag=true"), std::string::npos);
}

TEST(Log, LevelNamesRoundTrip) {
  EXPECT_EQ(log_level_from_string("debug"), LogLevel::kDebug);
  EXPECT_EQ(log_level_from_string("error"), LogLevel::kError);
  EXPECT_THROW(log_level_from_string("loud"), std::invalid_argument);
  EXPECT_STREQ(to_string(LogLevel::kInfo), "info");
}

// --- artifact flush registry ----------------------------------------------

TEST(Flush, CallbacksRunOnceAndAreConsumed) {
  int runs = 0;
  register_artifact_flush("test-artifact", [&runs] { ++runs; });
  flush_artifacts_now();
  EXPECT_EQ(runs, 1);
  flush_artifacts_now();  // already consumed
  EXPECT_EQ(runs, 1);
}

TEST(Flush, UnregisteredCallbackDoesNotRun) {
  int runs = 0;
  int token = register_artifact_flush("written-normally", [&runs] { ++runs; });
  unregister_artifact_flush(token);
  flush_artifacts_now();
  EXPECT_EQ(runs, 0);
}

TEST(Flush, MultipleArtifactsFlushIndependently) {
  int a = 0, b = 0;
  register_artifact_flush("a", [&a] { ++a; });
  int tb = register_artifact_flush("b", [&b] { ++b; });
  unregister_artifact_flush(tb);
  flush_artifacts_now();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
}

TEST(Flush, ThrowingCallbackIsContained) {
  int after = 0;
  register_artifact_flush("bad", [] { throw std::runtime_error("disk full"); });
  register_artifact_flush("good", [&after] { ++after; });
  EXPECT_NO_THROW(flush_artifacts_now());
  EXPECT_EQ(after, 1);
}

TEST(Flush, InstallHandlersIsIdempotent) {
  install_flush_handlers();
  install_flush_handlers();  // must not double-register atexit work
}

}  // namespace
}  // namespace adc
