// The transform scripting language (the paper's "scripts" future work).

#include <gtest/gtest.h>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "ltrans/local.hpp"
#include "sim/token_sim.hpp"
#include "transforms/script.hpp"

namespace adc {
namespace {

TEST(Script, ParsesAndRoundTrips) {
  auto s = TransformScript::parse("gt1; gt2; gt3(margin=2); gt4; gt2; gt5(broadcast=all)");
  EXPECT_EQ(s.to_string(), "gt1; gt2; gt3(margin=2); gt4; gt2; gt5(broadcast=all)");
  EXPECT_FALSE(s.has_local_step());
}

TEST(Script, PaperRecipeMatchesPipeline) {
  Cdfg via_script = diffeq();
  auto script = TransformScript::parse("gt1; gt2; gt3; gt4; gt2; gt5; lt");
  auto res = script.run(via_script);
  EXPECT_EQ(res.plan.count_controller_channels(), 5u);
  EXPECT_TRUE(script.has_local_step());
}

TEST(Script, StepsMayRepeatAndReorder) {
  Cdfg g = diffeq();
  auto script = TransformScript::parse("gt2; gt2; gt4; gt1; gt2; gt5");
  auto res = script.run(g);
  // A different order still yields a valid, correct system.
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 6}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(diffeq(), init);
  auto r = run_token_sim(g, init);
  EXPECT_TRUE(r.completed) << r.error;
  EXPECT_EQ(r.registers, gold);
  EXPECT_LE(res.plan.count_controller_channels(), 10u);
}

TEST(Script, Gt5PolicyArguments) {
  Cdfg none = diffeq();
  TransformScript::parse("gt1; gt2; gt3; gt4; gt5(broadcast=none, no_sym)").run(none);
  Cdfg all = diffeq();
  auto res_all = TransformScript::parse("gt1; gt2; gt3; gt4; gt5(broadcast=all)").run(all);
  auto res_none = TransformScript::parse("gt5(broadcast=none, no_sym, no_mux)").run(none);
  EXPECT_LT(res_all.plan.count_controller_channels(),
            res_none.plan.count_controller_channels());
}

TEST(Script, LtOptionsParsed) {
  auto s = TransformScript::parse("gt1; lt(no_sharing, no_presel)");
  EXPECT_TRUE(s.has_local_step());
  EXPECT_FALSE(s.local_options().lt5_signal_sharing);
  EXPECT_FALSE(s.local_options().lt3_mux_preselection);
  EXPECT_TRUE(s.local_options().lt4_remove_acks);
}

TEST(Script, Gt3ArgumentsApplied) {
  // An absurd margin suppresses the timing-based removal of arc 10.
  Cdfg g = diffeq();
  TransformScript::parse("gt1; gt2; gt3(margin=100000)").run(g);
  NodeId m2a = *g.find_node_by_label("M2 := U * dx");
  NodeId a1c = *g.find_node_by_label("U := U - M1");
  EXPECT_TRUE(g.find_arc(m2a, a1c).has_value());
}

TEST(Script, EmptyScriptDerivesUnoptimizedPlan) {
  Cdfg g = diffeq();
  auto res = TransformScript::parse("").run(g);
  EXPECT_EQ(res.plan.count_all_channels(), 17u);
}

TEST(Script, RejectsMalformedInput) {
  EXPECT_THROW(TransformScript::parse("gt9"), std::invalid_argument);
  EXPECT_THROW(TransformScript::parse("gt1 gt2"), std::invalid_argument);
  EXPECT_THROW(TransformScript::parse("gt3(margin=abc)"), std::invalid_argument);
  EXPECT_THROW(TransformScript::parse("gt5(broadcast=sideways)"), std::invalid_argument);
  EXPECT_THROW(TransformScript::parse("gt3(margin"), std::invalid_argument);
}

TEST(Script, FullFlowThroughScript) {
  Cdfg g = diffeq();
  auto script = TransformScript::parse("gt1; gt2; gt3; gt4; gt2; gt5; lt(no_sharing)");
  auto global = script.run(g);
  for (auto& c : extract_controllers(g, global.plan)) {
    auto lt = run_local_transforms(c, script.local_options());
    EXPECT_TRUE(lt.shared_signals.empty()) << "sharing was disabled";
  }
}

}  // namespace
}  // namespace adc
