// Robustness tests: the hardened runtime's contracts end to end.
//
//  * The paper's E8 deadlock corners — GT5 without GT2/GT3 leaves the
//    broadcast protocol without the sequencing those transforms insert, so
//    the event simulation must detect a system deadlock (status=deadlock)
//    in bounded time, never hang.
//  * Deadlines and cooperative cancellation: CancelToken semantics, the
//    watchdog, and stalls converted into structured status=timeout points.
//  * Injected faults surface as status=fault with the site in the error.
//  * The disk-tier point cache replays completed points warm across
//    executors (including deadlock verdicts) and round-trips FlowPoint
//    JSON losslessly.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "runtime/cancel.hpp"
#include "runtime/fault.hpp"
#include "runtime/flow.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/watchdog.hpp"

namespace fs = std::filesystem;

namespace adc {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override { fault().reset(); }
  void TearDown() override { fault().reset(); }
};

// --- E8: GT5 without GT2/GT3 deadlock corners ------------------------------

// Each corner runs on a generous whole-job deadline: a real deadlock must
// be *detected* by the simulator, not rescued by the watchdog, so the
// status has to be `deadlock` (not `timeout`) and the run must finish.
FlowPoint run_deadlock_corner(const char* script) {
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"), script);
  req.deadline_ms = 120000;
  return exec.run(req);
}

void expect_deadlock(const FlowPoint& p) {
  EXPECT_EQ(p.status, FlowStatus::kDeadlock) << to_string(p.status) << ": "
                                             << p.error;
  EXPECT_TRUE(p.deadlocked);
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("deadlock"), std::string::npos) << p.error;
}

TEST_F(RobustnessTest, E8DeadlockCornerGt5Alone) {
  expect_deadlock(run_deadlock_corner("gt5; lt"));
}

TEST_F(RobustnessTest, E8DeadlockCornerGt1Gt5) {
  expect_deadlock(run_deadlock_corner("gt1; gt5; lt"));
}

TEST_F(RobustnessTest, E8DeadlockCornerGt4Gt5) {
  expect_deadlock(run_deadlock_corner("gt4; gt5; lt"));
}

TEST_F(RobustnessTest, E8DeadlockCornerGt1Gt4Gt5) {
  expect_deadlock(run_deadlock_corner("gt1; gt4; gt5; lt"));
}

// --- cancellation primitives ------------------------------------------------

TEST_F(RobustnessTest, CancelTokenKeepsFirstReason) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  t.request("first");
  t.request("second");
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), "first");
  EXPECT_THROW(t.throw_if_cancelled(), CancelledError);
  // Copies share state.
  CancelToken copy = t;
  EXPECT_TRUE(copy.cancelled());
  EXPECT_TRUE(copy.same(t));
}

TEST_F(RobustnessTest, WatchdogTripsTokenAfterDelay) {
  CancelToken t;
  WatchdogGuard guard(t, 50, "watchdog test deadline");
  auto limit = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!t.cancelled() && std::chrono::steady_clock::now() < limit)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), "watchdog test deadline");
}

TEST_F(RobustnessTest, DisarmedWatchdogNeverFires) {
  CancelToken t;
  { WatchdogGuard guard(t, 50, "should never fire"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(t.cancelled());
}

TEST_F(RobustnessTest, ZeroDelayMeansNoDeadline) {
  CancelToken t;
  std::size_t before = Watchdog::global().armed();
  WatchdogGuard guard(t, 0, "unused");
  EXPECT_EQ(Watchdog::global().armed(), before);
}

// --- deadlines through the flow --------------------------------------------

TEST_F(RobustnessTest, StalledStageBecomesStructuredTimeout) {
  fault().configure("flow.sim=stall(30000)");
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  req.stage_deadline_ms = 150;
  auto t0 = std::chrono::steady_clock::now();
  FlowPoint p = exec.run(req);
  auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  EXPECT_EQ(p.status, FlowStatus::kTimeout) << p.error;
  EXPECT_FALSE(p.ok);
  EXPECT_NE(p.error.find("deadline"), std::string::npos) << p.error;
  EXPECT_LT(ms, 20000) << "stall must be cut short by the watchdog";
  EXPECT_EQ(exec.metrics().counter("flow.timeouts").value(), 1u);
}

TEST_F(RobustnessTest, JobDeadlineCoversTheWholePoint) {
  fault().configure("flow.controllers=stall(30000)");
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  req.deadline_ms = 150;
  FlowPoint p = exec.run(req);
  EXPECT_EQ(p.status, FlowStatus::kTimeout) << p.error;
  EXPECT_NE(p.error.find("deadline"), std::string::npos) << p.error;
}

TEST_F(RobustnessTest, StageDeadlineIsScopedToThePointNotItsQueueNeighbours) {
  // Regression: the controllers fan-out used to join via the pool's
  // *helping* wait, which executes arbitrary queued work — including whole
  // other points — nested inside the waiting point's controllers stage.
  // One stalled point then blew every earlier point's stage deadline (a
  // 32-point grid with one injected stall reported 27 timeouts).  The
  // scoped TaskGroup join keeps each point's deadline its own.
  fault().configure("flow.sim[gt2; gt5]=stall(60000)");
  ThreadPool pool(1);
  FlowExecutor exec(&pool);
  std::vector<FlowRequest> reqs;
  for (const char* s : {"lt", "gt1; lt", "gt2; lt", "gt2; gt5; lt"}) {
    FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), s);
    // Wide margin over the ~30 ms the honest stages need: the deadline is
    // wall-clock, and a parallel ctest run on a small machine can starve
    // this process for whole seconds.  The stalled point still times out
    // (its injected stall is 60 s).
    req.stage_deadline_ms = 10000;
    reqs.push_back(std::move(req));
  }
  std::vector<FlowPoint> points = exec.run_all(reqs);
  ASSERT_EQ(points.size(), reqs.size());
  for (const FlowPoint& p : points) {
    if (p.script == "gt2; gt5; lt") {
      EXPECT_EQ(p.status, FlowStatus::kTimeout) << p.script << ": " << p.error;
    } else {
      EXPECT_EQ(p.status, FlowStatus::kOk) << p.script << ": " << p.error;
    }
  }
}

TEST_F(RobustnessTest, PreCancelledRequestNeverRuns) {
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  req.cancel.request("operator abort");
  FlowPoint p = exec.run(req);
  EXPECT_EQ(p.status, FlowStatus::kCancelled) << to_string(p.status);
  EXPECT_FALSE(p.ok);
}

// --- injected faults --------------------------------------------------------

TEST_F(RobustnessTest, InjectedStageFaultSurfacesAsFaultStatus) {
  fault().configure("flow.global=fail:1");
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  FlowPoint p = exec.run(req);
  EXPECT_EQ(p.status, FlowStatus::kFault) << to_string(p.status);
  EXPECT_NE(p.error.find("flow.global"), std::string::npos) << p.error;
  EXPECT_EQ(exec.metrics().counter("flow.faults").value(), 1u);
  // The plan is exhausted (count 1): a fresh token retries clean.
  req.cancel = CancelToken();
  FlowPoint retry = exec.run(req);
  EXPECT_EQ(retry.status, FlowStatus::kOk) << retry.error;
}

TEST_F(RobustnessTest, FaultFilterSelectsByScript) {
  fault().configure("flow.sim[gt2; gt5]=fail");
  FlowExecutor exec(nullptr);
  const BuiltinBenchmark* b = find_builtin("mac_reduce");
  FlowPoint hit = exec.run(make_builtin_request(*b, "gt2; gt5; lt"));
  EXPECT_EQ(hit.status, FlowStatus::kFault);
  FlowPoint miss = exec.run(make_builtin_request(*b, "lt"));
  EXPECT_EQ(miss.status, FlowStatus::kOk) << miss.error;
}

// --- disk-tier point cache ---------------------------------------------------

class DiskTierTest : public RobustnessTest {
 protected:
  void SetUp() override {
    RobustnessTest::SetUp();
    dir_ = fs::path(::testing::TempDir()) /
           ("adc_disk_tier_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    RobustnessTest::TearDown();
  }

  FlowExecutor::Options disk_opts() const {
    FlowExecutor::Options o;
    o.disk_cache_dir = dir_.string();
    return o;
  }

  fs::path dir_;
};

TEST_F(DiskTierTest, CompletedPointReplaysWarmAcrossExecutors) {
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  FlowPoint cold;
  {
    FlowExecutor exec(nullptr, disk_opts());
    cold = exec.run(req);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_FALSE(cold.from_disk_cache);
    EXPECT_EQ(exec.metrics().counter("flow.disk_stores").value(), 1u);
  }
  FlowExecutor fresh(nullptr, disk_opts());
  FlowPoint warm = fresh.run(req);
  EXPECT_TRUE(warm.from_disk_cache);
  EXPECT_EQ(warm.status, FlowStatus::kOk);
  EXPECT_EQ(fresh.metrics().counter("flow.disk_hits").value(), 1u);
  // The replay carries the original metrics verbatim.
  EXPECT_EQ(warm.channels, cold.channels);
  EXPECT_EQ(warm.states, cold.states);
  EXPECT_EQ(warm.transitions, cold.transitions);
  EXPECT_EQ(warm.products, cold.products);
  EXPECT_EQ(warm.literals, cold.literals);
  EXPECT_EQ(warm.latency, cold.latency);
  EXPECT_EQ(warm.sim_registers, cold.sim_registers);
}

TEST_F(DiskTierTest, DeadlockVerdictIsCachedToo) {
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"), "gt5; lt");
  {
    FlowExecutor exec(nullptr, disk_opts());
    FlowPoint p = exec.run(req);
    ASSERT_EQ(p.status, FlowStatus::kDeadlock);
  }
  FlowExecutor fresh(nullptr, disk_opts());
  FlowPoint warm = fresh.run(req);
  EXPECT_TRUE(warm.from_disk_cache);
  EXPECT_EQ(warm.status, FlowStatus::kDeadlock);
  EXPECT_TRUE(warm.deadlocked);
  EXPECT_FALSE(warm.ok);
}

TEST_F(DiskTierTest, FaultedPointIsNeverCached) {
  fault().configure("flow.sim=fail:1");
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  {
    FlowExecutor exec(nullptr, disk_opts());
    FlowPoint p = exec.run(req);
    ASSERT_EQ(p.status, FlowStatus::kFault);
    EXPECT_EQ(exec.metrics().counter("flow.disk_stores").value(), 0u);
  }
  fault().reset();
  // A fresh executor recomputes (no poisoned entry) and succeeds.
  FlowExecutor fresh(nullptr, disk_opts());
  req.cancel = CancelToken();
  FlowPoint p = fresh.run(req);
  EXPECT_FALSE(p.from_disk_cache);
  EXPECT_EQ(p.status, FlowStatus::kOk) << p.error;
}

TEST_F(DiskTierTest, CorruptedEntryFallsBackToRecompute) {
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"), "lt");
  {
    FlowExecutor exec(nullptr, disk_opts());
    ASSERT_TRUE(exec.run(req).ok);
  }
  // Flip bits in every cached file: all entries must fail their checksum.
  for (const auto& ent : fs::directory_iterator(dir_)) {
    std::fstream f(ent.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0, std::ios::end);
    auto size = static_cast<long>(f.tellp());
    f.seekp(size / 2);
    f.put('\xff');
  }
  FlowExecutor fresh(nullptr, disk_opts());
  FlowPoint p = fresh.run(req);
  EXPECT_FALSE(p.from_disk_cache);
  EXPECT_EQ(p.status, FlowStatus::kOk) << p.error;
  ASSERT_NE(fresh.disk_cache(), nullptr);
  EXPECT_GE(fresh.disk_cache()->stats().corrupt, 1u);
}

TEST_F(RobustnessTest, FlowPointJsonRoundTrips) {
  FlowExecutor exec(nullptr);
  FlowRequest req = make_builtin_request(*find_builtin("mac_reduce"),
                                         "gt2; gt5; lt");
  FlowPoint p = exec.run(req);
  ASSERT_TRUE(p.ok) << p.error;
  FlowPoint r = parse_flow_point(to_json(p));
  EXPECT_EQ(r.benchmark, p.benchmark);
  EXPECT_EQ(r.script, p.script);
  EXPECT_EQ(r.ok, p.ok);
  EXPECT_EQ(r.status, p.status);
  EXPECT_EQ(r.channels, p.channels);
  EXPECT_EQ(r.states, p.states);
  EXPECT_EQ(r.transitions, p.transitions);
  EXPECT_EQ(r.products, p.products);
  EXPECT_EQ(r.literals, p.literals);
  EXPECT_EQ(r.latency, p.latency);
  EXPECT_EQ(r.sim_events, p.sim_events);
  EXPECT_EQ(r.sim_operations, p.sim_operations);
  EXPECT_EQ(r.sim_registers, p.sim_registers);
  ASSERT_EQ(r.controllers.size(), p.controllers.size());
  for (std::size_t i = 0; i < r.controllers.size(); ++i) {
    EXPECT_EQ(r.controllers[i].name, p.controllers[i].name);
    EXPECT_EQ(r.controllers[i].states, p.controllers[i].states);
    EXPECT_EQ(r.controllers[i].literals, p.controllers[i].literals);
  }
  ASSERT_EQ(r.timings.size(), p.timings.size());
  for (std::size_t i = 0; i < r.timings.size(); ++i) {
    EXPECT_EQ(r.timings[i].stage, p.timings[i].stage);
    EXPECT_EQ(r.timings[i].cached, p.timings[i].cached);
  }
}

TEST_F(RobustnessTest, DeadlockPointJsonRoundTripsStatus) {
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(make_builtin_request(*find_builtin("diffeq"),
                                              "gt5; lt"));
  ASSERT_EQ(p.status, FlowStatus::kDeadlock);
  FlowPoint r = parse_flow_point(to_json(p));
  EXPECT_EQ(r.status, FlowStatus::kDeadlock);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, p.error);
}

}  // namespace
}  // namespace adc
