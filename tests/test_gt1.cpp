// GT1 loop parallelism: the four steps of §3.1, checked against the
// paper's DIFFEQ narrative (arcs 1-3 removed, backward arcs 8 and 9 added,
// steps C and D add nothing), plus behavioural checks: overlap appears and
// results stay correct.

#include <gtest/gtest.h>

#include "cdfg/analysis.hpp"
#include "frontend/benchmarks.hpp"
#include "sim/token_sim.hpp"
#include "transforms/global.hpp"

namespace adc {
namespace {

TEST(Gt1, StepARemovesEndloopSynchronization) {
  Cdfg g = diffeq();
  NodeId endloop = *g.find_unique(NodeKind::kEndLoop);
  EXPECT_EQ(g.in_arcs(endloop).size(), 4u);  // three sync arcs + the FU sched arc

  auto res = gt1_loop_parallelism(g);
  EXPECT_EQ(res.arcs_removed, 3);
  auto ins = g.in_arcs(endloop);
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(g.node(g.arc(ins[0]).src).label(), "C := X < a")
      << "only the schedule-predecessor arc survives";
}

TEST(Gt1, StepBAddsExactlyThePapersTwoBackwardArcs) {
  Cdfg g = diffeq();
  auto res = gt1_loop_parallelism(g);
  EXPECT_EQ(res.arcs_added, 2);

  NodeId a1c = *g.find_node_by_label("U := U - M1");
  NodeId m1a = *g.find_node_by_label("M1 := U * X1");
  NodeId m2a = *g.find_node_by_label("M2 := U * dx");
  auto arc8 = g.find_arc(a1c, m1a, /*backward=*/true);
  auto arc9 = g.find_arc(a1c, m2a, /*backward=*/true);
  ASSERT_TRUE(arc8.has_value()) << "paper's arc 8";
  ASSERT_TRUE(arc9.has_value()) << "paper's arc 9";
}

TEST(Gt1, StepsCAndDAddNothingForDiffeq) {
  // Paper: "step C does not need to add any constraint" and "step D does,
  // like step C, not add any constraints" — both candidates are dominated.
  Cdfg g = diffeq();
  auto res = gt1_loop_parallelism(g);
  EXPECT_EQ(res.arcs_added, 2) << "only the two backward arcs of step B";
}

TEST(Gt1, SemanticsPreservedUnderRandomDelays) {
  Cdfg g = diffeq();
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 12}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = run_sequential(g, init);
  gt1_loop_parallelism(g);
  for (unsigned seed = 1; seed <= 12; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

TEST(Gt1, EnablesTwoIterationOverlap) {
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 20}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  int best = 1;
  for (unsigned seed = 1; seed <= 10; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    auto r = run_token_sim(g, init, o);
    ASSERT_TRUE(r.completed) << r.error;
    best = std::max(best, r.max_overlap);
    EXPECT_LE(r.max_overlap, 2) << "step D limits overlap to two iterations";
  }
  EXPECT_EQ(best, 2) << "loop parallelism should actually overlap iterations";
}

TEST(Gt1, WireDisciplineStillHolds) {
  // Step D's purpose: no wire ever queues two unconsumed transitions.
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 30}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  for (unsigned seed = 1; seed <= 10; ++seed) {
    TokenSimOptions o;
    o.seed = seed;
    o.check_wire_discipline = true;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.error.empty()) << r.error;
  }
}

TEST(Gt1, ImprovesLoopLatency) {
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 30}, {"dx", 1},
                                           {"U", 2},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  TokenSimOptions o;
  o.randomize_delays = false;  // compare worst-case finish times
  Cdfg before = diffeq();
  auto rb = run_token_sim(before, init, o);
  Cdfg after = diffeq();
  gt1_loop_parallelism(after);
  auto ra = run_token_sim(after, init, o);
  ASSERT_TRUE(rb.completed && ra.completed);
  EXPECT_LT(ra.finish_time, rb.finish_time)
      << "overlapping iterations must shorten the schedule";
}

TEST(Gt1, IdempotentOnSecondApplication) {
  Cdfg g = diffeq();
  gt1_loop_parallelism(g);
  std::size_t arcs = g.live_arc_count();
  auto res2 = gt1_loop_parallelism(g);
  EXPECT_EQ(res2.arcs_added, 0);
  EXPECT_EQ(res2.arcs_removed, 0);
  EXPECT_EQ(g.live_arc_count(), arcs);
}

TEST(Gt1, AppliesToEveryLoopInRandomPrograms) {
  RandomProgramParams p;
  for (int seed = 0; seed < 15; ++seed) {
    Cdfg g = random_program(p, static_cast<std::uint64_t>(seed));
    std::map<std::string, std::int64_t> init;
    for (int i = 0; i < p.regs; ++i) init["r" + std::to_string(i)] = i + 1;
    init["n"] = 4;
    init["cond"] = 1;
    auto gold = run_sequential(g, init);
    gt1_loop_parallelism(g);
    TokenSimOptions o;
    o.seed = static_cast<std::uint64_t>(seed) * 31 + 7;
    auto r = run_token_sim(g, init, o);
    EXPECT_TRUE(r.completed) << "seed " << seed << ": " << r.error;
    EXPECT_EQ(r.registers, gold) << "seed " << seed;
  }
}

TEST(Gt1, NoOpOnStraightLineCode) {
  Cdfg g = fir4();
  auto res = gt1_loop_parallelism(g);
  EXPECT_FALSE(res.changed());
}

}  // namespace
}  // namespace adc
