// Critical-path latency attribution: the analyzer on a hand-built causal
// log, and end-to-end through the FlowExecutor on DIFFEQ — the acceptance
// bar is that >= 95% of the simulated end-to-end latency is attributed to
// concrete channels/controllers/phases, deterministically.

#include "sim/critical_path.hpp"

#include <gtest/gtest.h>

#include "report/json.hpp"
#include "report/json_parse.hpp"
#include "runtime/flow.hpp"
#include "runtime/thread_pool.hpp"

namespace adc {
namespace {

// --- analyzer unit ---------------------------------------------------------

SimEventLog hand_built_log() {
  // go(env) -> ALU1 req wire -> ALU1 compute -> register write, plus one
  // off-path distractor event that must not be attributed.
  SimEventLog log;
  auto add = [&log](std::int64_t parent, std::int64_t time, SimPhase phase,
                    const std::string& controller, const std::string& label) {
    SimEventRecord r;
    r.parent = parent;
    r.time = time;
    r.phase = phase;
    r.controller = controller.empty() ? -1 : log.intern_controller(controller);
    r.label = log.intern_label(label);
    r.applied = true;
    log.records.push_back(r);
  };
  add(-1, 0, SimPhase::kRequestWait, "", "go");
  add(0, 5, SimPhase::kMicroOp, "ALU1", "r1");
  add(1, 35, SimPhase::kOp, "ALU1", "ALU1");
  add(2, 40, SimPhase::kRegWrite, "", "X");
  add(0, 3, SimPhase::kMicroOp, "ALU2", "r2");  // off-path
  return log;
}

TEST(CriticalPath, HandBuiltLogTelescopesToFullAttribution) {
  CriticalPathResult res = analyze_critical_path(hand_built_log(), 3, 40);
  EXPECT_EQ(res.total_latency, 40);
  EXPECT_EQ(res.attributed, 40);
  EXPECT_DOUBLE_EQ(res.attributed_fraction(), 1.0);
  // Root-to-final order, times telescoping.
  ASSERT_EQ(res.segments.size(), 4u);
  EXPECT_EQ(res.segments[0].label, "go");
  EXPECT_EQ(res.segments[3].label, "X");
  for (std::size_t i = 1; i < res.segments.size(); ++i)
    EXPECT_EQ(res.segments[i].start, res.segments[i - 1].end);
  EXPECT_EQ(res.by_phase.at("op"), 30);
  EXPECT_EQ(res.by_phase.at("micro-op"), 5);
  EXPECT_EQ(res.by_phase.at("register-write"), 5);
  EXPECT_EQ(res.by_controller.at("ALU1"), 35);
  EXPECT_EQ(res.by_controller.count("ALU2"), 0u);  // distractor is off-path
  // by_channel only aggregates request-wait segments.
  EXPECT_EQ(res.by_channel.size(), 1u);
  EXPECT_EQ(res.by_channel.at("go"), 0);
}

TEST(CriticalPath, TopChainsMergeConsecutiveSegmentsAndSortByDuration) {
  CriticalPathResult res = analyze_critical_path(hand_built_log(), 3, 40);
  auto chains = res.top_chains(10);
  ASSERT_GE(chains.size(), 2u);
  EXPECT_EQ(chains[0].phase, SimPhase::kOp);
  EXPECT_EQ(chains[0].controller, "ALU1");
  EXPECT_EQ(chains[0].duration, 30);
  EXPECT_EQ(chains[0].events, 1u);
  for (std::size_t i = 1; i < chains.size(); ++i)
    EXPECT_LE(chains[i].duration, chains[i - 1].duration);
  EXPECT_EQ(res.top_chains(1).size(), 1u);
}

TEST(CriticalPath, DegenerateInputsAreSafe) {
  SimEventLog log = hand_built_log();
  // Out-of-range or negative final event: empty result, no crash.
  EXPECT_EQ(analyze_critical_path(log, -1, 40).segments.size(), 0u);
  EXPECT_EQ(analyze_critical_path(log, 99, 40).segments.size(), 0u);
  EXPECT_EQ(analyze_critical_path({}, 0, 0).attributed, 0);
  // A corrupt parent pointing forward must terminate the walk.
  log.records[2].parent = 4;
  CriticalPathResult res = analyze_critical_path(log, 3, 40);
  EXPECT_LE(res.attributed, 40);
}

// --- end-to-end through the flow ------------------------------------------

FlowPoint run_diffeq_with_critical_path() {
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"),
                                         "gt1; gt2; gt3; gt4; gt2; gt5; lt");
  req.critical_path = true;
  FlowExecutor exec(nullptr);
  return exec.run(req);
}

TEST(CriticalPath, FlowAttributesAtLeast95PercentOfDiffeqLatency) {
  FlowPoint p = run_diffeq_with_critical_path();
  ASSERT_TRUE(p.ok) << p.error;
  ASSERT_TRUE(p.critical_path);
  const CriticalPathResult& cp = *p.critical_path;
  EXPECT_EQ(cp.total_latency, p.latency);
  EXPECT_GE(cp.attributed_fraction(), 0.95)
      << cp.attributed << " of " << cp.total_latency;
  ASSERT_FALSE(cp.segments.empty());
  // Segment times telescope root-to-final and sum to `attributed`.
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < cp.segments.size(); ++i) {
    EXPECT_LE(cp.segments[i].start, cp.segments[i].end);
    if (i > 0) {
      EXPECT_EQ(cp.segments[i].start, cp.segments[i - 1].end);
    }
    sum += cp.segments[i].duration();
  }
  EXPECT_EQ(sum, cp.attributed);
  // The by-phase aggregation partitions the attributed time.
  std::int64_t phase_sum = 0;
  for (const auto& [phase, ticks] : cp.by_phase) phase_sum += ticks;
  EXPECT_EQ(phase_sum, cp.attributed);
  // DIFFEQ's latency is compute-bound: op time dominates and the top chain
  // is a functional-unit computation.
  EXPECT_GT(cp.by_phase.at("op"), 0);
  auto chains = cp.top_chains(1);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].phase, SimPhase::kOp);
}

TEST(CriticalPath, AttributionIsDeterministicAcrossRuns) {
  FlowPoint a = run_diffeq_with_critical_path();
  FlowPoint b = run_diffeq_with_critical_path();
  ASSERT_TRUE(a.ok && b.ok);
  ASSERT_TRUE(a.critical_path && b.critical_path);
  EXPECT_EQ(a.critical_path->attributed, b.critical_path->attributed);
  EXPECT_EQ(a.critical_path->segments.size(), b.critical_path->segments.size());
  auto ca = a.critical_path->top_chains(3);
  auto cb = b.critical_path->top_chains(3);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca[i].phase, cb[i].phase);
    EXPECT_EQ(ca[i].controller, cb[i].controller);
    EXPECT_EQ(ca[i].label, cb[i].label);
    EXPECT_EQ(ca[i].duration, cb[i].duration);
  }
}

// The attribution a profile store is built from must not depend on how the
// grid was scheduled: the full 32-point GT ablation sweep, serial vs
// pooled, segment for segment.
TEST(CriticalPath, GridAttributionIdenticalSerialAndPooled) {
  std::vector<FlowRequest> reqs;
  for (const auto& script : gt_ablation_grid(true)) {
    FlowRequest req = make_builtin_request(*find_builtin("diffeq"), script);
    req.critical_path = true;
    reqs.push_back(std::move(req));
  }
  ASSERT_EQ(reqs.size(), 32u);

  FlowExecutor serial(nullptr);
  std::vector<FlowPoint> as = serial.run_all(reqs);
  ThreadPool pool(4);
  FlowExecutor pooled(&pool);
  std::vector<FlowPoint> bs = pooled.run_all(reqs);

  ASSERT_EQ(as.size(), bs.size());
  std::size_t attributed_points = 0, ok_points = 0;
  for (std::size_t i = 0; i < as.size(); ++i) {
    const FlowPoint& a = as[i];
    const FlowPoint& b = bs[i];
    EXPECT_EQ(a.ok, b.ok) << reqs[i].script;
    ASSERT_EQ(a.critical_path != nullptr, b.critical_path != nullptr)
        << reqs[i].script;
    if (a.ok) ++ok_points;
    if (!a.critical_path) continue;
    ++attributed_points;
    const CriticalPathResult& ca = *a.critical_path;
    const CriticalPathResult& cb = *b.critical_path;
    EXPECT_EQ(ca.total_latency, cb.total_latency) << reqs[i].script;
    EXPECT_EQ(ca.attributed, cb.attributed) << reqs[i].script;
    ASSERT_EQ(ca.segments.size(), cb.segments.size()) << reqs[i].script;
    for (std::size_t s = 0; s < ca.segments.size(); ++s) {
      EXPECT_EQ(ca.segments[s].start, cb.segments[s].start);
      EXPECT_EQ(ca.segments[s].end, cb.segments[s].end);
      EXPECT_EQ(ca.segments[s].phase, cb.segments[s].phase);
      EXPECT_EQ(ca.segments[s].controller, cb.segments[s].controller);
      EXPECT_EQ(ca.segments[s].label, cb.segments[s].label);
    }
    EXPECT_EQ(ca.by_phase, cb.by_phase) << reqs[i].script;
    EXPECT_EQ(ca.by_controller, cb.by_controller) << reqs[i].script;
    EXPECT_EQ(ca.by_channel, cb.by_channel) << reqs[i].script;
  }
  // The grid's four gt5-without-gt2/gt3 corners deadlock (their partial
  // progress is still attributed); everything else completes.
  EXPECT_EQ(ok_points, 28u);
  EXPECT_EQ(attributed_points, 32u);
}

TEST(CriticalPath, NotRequestedMeansNoLog) {
  FlowRequest req = make_builtin_request(*find_builtin("diffeq"), "gt2; lt");
  FlowExecutor exec(nullptr);
  FlowPoint p = exec.run(req);
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.critical_path, nullptr);
}

TEST(CriticalPath, TableAndJsonRenderings) {
  FlowPoint p = run_diffeq_with_critical_path();
  ASSERT_TRUE(p.ok && p.critical_path);
  std::string table = p.critical_path->to_table();
  EXPECT_NE(table.find("critical path:"), std::string::npos);
  EXPECT_NE(table.find("by phase:"), std::string::npos);
  EXPECT_NE(table.find("top critical chains:"), std::string::npos);

  JsonWriter w(true);
  p.critical_path->write_json(w);
  JsonValue doc = parse_json(w.str());
  EXPECT_TRUE(doc.at("total_latency").is_number());
  EXPECT_GE(doc.at("attributed_fraction").number, 0.95);
  EXPECT_TRUE(doc.at("by_phase").is_object());
  ASSERT_TRUE(doc.at("top_chains").is_array());
  ASSERT_FALSE(doc.at("top_chains").array.empty());
  EXPECT_TRUE(doc.at("top_chains").array[0].at("phase").is_string());

  // The point's own JSON embeds the same block.
  JsonValue point = parse_json(to_json(p));
  EXPECT_TRUE(point.at("critical_path").is_object());
  EXPECT_GE(point.at("critical_path").at("attributed_fraction").number, 0.95);
}

}  // namespace
}  // namespace adc
