// The content-addressed cover memo: replay equality, name-independence of
// the key, the disk tier round trip, torn-entry detection/eviction, and
// the fault-injection sites on the fill path.

#include <gtest/gtest.h>

#include <filesystem>

#include "logic/memo.hpp"
#include "runtime/disk_cache.hpp"
#include "runtime/fault.hpp"

namespace adc {
namespace {

namespace fs = std::filesystem;

Cube cube(const std::string& pat) {
  Cube c(pat.size());
  for (std::size_t i = 0; i < pat.size(); ++i) {
    if (pat[i] == '0') c.set(i, Cube::V::kZero);
    if (pat[i] == '1') c.set(i, Cube::V::kOne);
  }
  return c;
}

// A small feasible spec: two required cubes, one OFF region.
FunctionSpec feasible_spec(std::string name) {
  FunctionSpec f;
  f.name = std::move(name);
  f.vars = 4;
  f.required = {cube("11--"), cube("1-1-")};
  f.off = {cube("0---")};
  return f;
}

// A spec whose required cube intersects OFF: minimization reports an
// issue prefixed with the function name.
FunctionSpec infeasible_spec(std::string name) {
  FunctionSpec f;
  f.name = std::move(name);
  f.vars = 3;
  f.required = {cube("11-")};
  f.off = {cube("1--")};
  return f;
}

class LogicMemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault().reset();
    dir_ = fs::temp_directory_path() / "adc_logic_memo_test";
    fs::remove_all(dir_);
  }
  void TearDown() override {
    fault().reset();
    fs::remove_all(dir_);
  }
  fs::path dir_;
};

TEST_F(LogicMemoTest, FingerprintIgnoresNameAndCubeOrder) {
  FunctionSpec a = feasible_spec("A");
  FunctionSpec b = feasible_spec("B");
  std::swap(b.required[0], b.required[1]);
  EXPECT_EQ(spec_fingerprint(a, false, 18), spec_fingerprint(b, false, 18));
  // Options are part of the key: an exact cover is not a greedy cover.
  EXPECT_NE(spec_fingerprint(a, false, 18), spec_fingerprint(a, true, 18));
  // Content changes change the key.
  FunctionSpec c = feasible_spec("A");
  c.off.push_back(cube("--00"));
  EXPECT_NE(spec_fingerprint(a, false, 18), spec_fingerprint(c, false, 18));
}

TEST_F(LogicMemoTest, ReplayMatchesFreshRunAndReprefixesIssues) {
  LogicMemo memo;
  CoverOptions opts;
  opts.memo = &memo;

  FunctionSpec a = infeasible_spec("A");
  CoverResult fresh = minimize_hazard_free(a, opts);
  ASSERT_FALSE(fresh.feasible);
  ASSERT_FALSE(fresh.issues.empty());
  EXPECT_EQ(fresh.issues[0].rfind("A: ", 0), 0u) << fresh.issues[0];
  EXPECT_EQ(memo.stats().fills, 1u);

  // Same content, different name: must hit, and the issue text must carry
  // the *new* name.
  FunctionSpec b = infeasible_spec("B");
  CoverResult replay = minimize_hazard_free(b, opts);
  EXPECT_EQ(memo.stats().hits, 1u);
  EXPECT_EQ(replay.feasible, fresh.feasible);
  ASSERT_EQ(replay.issues.size(), fresh.issues.size());
  for (std::size_t i = 0; i < fresh.issues.size(); ++i) {
    EXPECT_EQ(replay.issues[i], "B: " + fresh.issues[i].substr(3));
  }
  ASSERT_EQ(replay.products.size(), fresh.products.size());
  for (std::size_t i = 0; i < fresh.products.size(); ++i)
    EXPECT_TRUE(replay.products[i] == fresh.products[i]);
}

TEST_F(LogicMemoTest, SerializeRoundTripsAndRejectsDefects) {
  LogicMemo::Entry e;
  e.feasible = false;
  e.products = {cube("11--"), cube("1-1-")};
  e.issue_suffixes = {"required cube 0-0- has no dhf implicant"};

  std::string payload = LogicMemo::serialize(e);
  auto back = LogicMemo::deserialize(payload);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->feasible, e.feasible);
  ASSERT_EQ(back->products.size(), 2u);
  EXPECT_TRUE(back->products[0] == e.products[0]);
  EXPECT_TRUE(back->products[1] == e.products[1]);
  EXPECT_EQ(back->issue_suffixes, e.issue_suffixes);

  EXPECT_FALSE(LogicMemo::deserialize("").has_value());
  EXPECT_FALSE(LogicMemo::deserialize("garbage").has_value());
  // Flip one payload byte: the body checksum must catch it.
  std::string torn = payload;
  torn[torn.size() / 2] ^= 0x20;
  EXPECT_FALSE(LogicMemo::deserialize(torn).has_value());
  // Trailing garbage is a defect even with a correct prefix.
  EXPECT_FALSE(LogicMemo::deserialize(payload + "x").has_value());
}

TEST_F(LogicMemoTest, DiskTierRoundTripAcrossMemoInstances) {
  DiskCache disk(dir_.string(), 0);
  FunctionSpec a = feasible_spec("A");
  CoverResult fresh;
  {
    LogicMemo memo;
    memo.attach_disk(&disk);
    CoverOptions opts;
    opts.memo = &memo;
    fresh = minimize_hazard_free(a, opts);
    ASSERT_TRUE(fresh.feasible);
  }
  // A fresh memo (new process, same cache dir) replays from disk.
  LogicMemo memo;
  memo.attach_disk(&disk);
  CoverOptions opts;
  opts.memo = &memo;
  CoverResult warm = minimize_hazard_free(a, opts);
  EXPECT_EQ(memo.stats().disk_hits, 1u);
  EXPECT_EQ(memo.stats().misses, 0u);
  ASSERT_EQ(warm.products.size(), fresh.products.size());
  for (std::size_t i = 0; i < fresh.products.size(); ++i)
    EXPECT_TRUE(warm.products[i] == fresh.products[i]);
  // Second lookup is a memory hit — the disk entry was promoted.
  minimize_hazard_free(a, opts);
  EXPECT_EQ(memo.stats().hits, 1u);
}

TEST_F(LogicMemoTest, TornDiskEntryIsDetectedEvictedAndRecomputed) {
  DiskCache disk(dir_.string(), 0);
  FunctionSpec a = feasible_spec("A");
  Fingerprint key = spec_fingerprint(a, false, 18);
  CoverResult fresh;
  {
    // Corrupt every fill's payload in flight: the ADCK envelope is written
    // after the corruption and still validates — only the memo's own body
    // checksum can catch this.
    fault().configure("logic.memo.put.payload=corrupt");
    LogicMemo memo;
    memo.attach_disk(&disk);
    CoverOptions opts;
    opts.memo = &memo;
    fresh = minimize_hazard_free(a, opts);
    fault().reset();
    ASSERT_TRUE(disk.contains(LogicMemo::disk_key(key)));
  }
  LogicMemo memo;
  memo.attach_disk(&disk);
  CoverOptions opts;
  opts.memo = &memo;
  CoverResult warm = minimize_hazard_free(a, opts);
  // The torn entry was detected, evicted from disk, and recomputed with
  // the same result as the fresh run.
  EXPECT_EQ(memo.stats().disk_corrupt, 1u);
  EXPECT_EQ(memo.stats().disk_hits, 0u);
  EXPECT_EQ(memo.stats().misses, 1u);
  EXPECT_EQ(memo.stats().fills, 1u);
  EXPECT_TRUE(disk.contains(LogicMemo::disk_key(key)));
  ASSERT_EQ(warm.products.size(), fresh.products.size());
  for (std::size_t i = 0; i < fresh.products.size(); ++i)
    EXPECT_TRUE(warm.products[i] == fresh.products[i]);
  // The recompute refilled a good entry: a third memo replays from disk.
  LogicMemo memo2;
  memo2.attach_disk(&disk);
  CoverOptions opts2;
  opts2.memo = &memo2;
  minimize_hazard_free(a, opts2);
  EXPECT_EQ(memo2.stats().disk_hits, 1u);
  EXPECT_EQ(memo2.stats().disk_corrupt, 0u);
}

TEST_F(LogicMemoTest, FillFaultIsSwallowedAndCounted) {
  fault().configure("logic.memo.fill=fail:1");
  LogicMemo memo;
  CoverOptions opts;
  opts.memo = &memo;
  FunctionSpec a = feasible_spec("A");
  CoverResult r1 = minimize_hazard_free(a, opts);  // fill fails, swallowed
  EXPECT_TRUE(r1.feasible);
  EXPECT_EQ(memo.stats().fill_errors, 1u);
  EXPECT_EQ(memo.stats().fills, 0u);
  // The fault plan is exhausted; the next run computes again and fills.
  CoverResult r2 = minimize_hazard_free(a, opts);
  EXPECT_EQ(memo.stats().fills, 1u);
  CoverResult r3 = minimize_hazard_free(a, opts);
  EXPECT_EQ(memo.stats().hits, 1u);
  ASSERT_EQ(r3.products.size(), r1.products.size());
  for (std::size_t i = 0; i < r1.products.size(); ++i)
    EXPECT_TRUE(r3.products[i] == r1.products[i]);
  (void)r2;
}

TEST_F(LogicMemoTest, LruEvictsAtCapacityAndZeroCapacityDisables) {
  LogicMemo memo(2);
  auto entry = std::make_shared<const LogicMemo::Entry>();
  Fingerprint k1 = FingerprintBuilder().add("k1").digest();
  Fingerprint k2 = FingerprintBuilder().add("k2").digest();
  Fingerprint k3 = FingerprintBuilder().add("k3").digest();
  memo.fill(k1, entry);
  memo.fill(k2, entry);
  EXPECT_NE(memo.lookup(k1), nullptr);  // refresh k1's LRU stamp
  memo.fill(k3, entry);                 // evicts k2
  EXPECT_EQ(memo.stats().evictions, 1u);
  EXPECT_NE(memo.lookup(k1), nullptr);
  EXPECT_EQ(memo.lookup(k2), nullptr);
  EXPECT_NE(memo.lookup(k3), nullptr);

  LogicMemo off(0);
  off.fill(k1, entry);
  EXPECT_EQ(off.lookup(k1), nullptr);
  EXPECT_EQ(off.stats().entries, 0u);
}

}  // namespace
}  // namespace adc
