// The paper's case study, end to end: the differential-equation solver
// benchmark through every stage of the flow, with a narrated report.
//
//   ./build/examples/diffeq_flow

#include <cstdio>
#include <fstream>

#include "cdfg/dot.hpp"
#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "logic/stats.hpp"
#include "ltrans/local.hpp"
#include "sim/event_sim.hpp"
#include "sim/golden.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/print.hpp"

using namespace adc;

int main() {
  std::printf("=== DIFFEQ: while (x < a) { x1=x+dx; u1=u-3xu dx-3y dx; y1=y+u dx } ===\n\n");

  Cdfg g = diffeq();
  std::printf("[1] scheduled CDFG: %zu nodes, %zu arcs across 4 units "
              "(2 ALUs, 2 multipliers)\n",
              g.live_node_count(), g.live_arc_count());
  std::ofstream("diffeq_initial.dot") << to_dot(g);

  auto global = run_global_transforms(g);
  std::printf("\n[2] global transformations:\n");
  for (const auto& s : global.stages)
    std::printf("    %-36s -%d arcs +%d arcs, %d merges\n", s.name.c_str(),
                s.arcs_removed, s.arcs_added, s.nodes_merged + s.channels_merged);
  std::printf("    channels: %zu controller-controller (+%zu environment)\n",
              global.plan.count_controller_channels(),
              global.plan.count_all_channels() -
                  global.plan.count_controller_channels());
  for (const auto& c : global.plan.channels())
    if (!c.involves_environment())
      std::printf("      %s\n", describe(c, g).c_str());
  std::ofstream("diffeq_transformed.dot") << to_dot(g);

  std::printf("\n[3] controller extraction + local transformations:\n");
  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, global.plan)) {
    std::size_t s0 = c.machine.state_count(), t0 = c.machine.transition_count();
    auto lt = run_local_transforms(c);
    std::printf("    %-5s %2zu/%2zu -> %2zu/%2zu states/transitions",
                c.machine.name().c_str(), s0, t0, c.machine.state_count(),
                c.machine.transition_count());
    std::printf("  (%zu wires shared)\n", lt.shared_signals.size());
    std::ofstream(c.machine.name() + ".bms") << to_text(c.machine);
    ControllerInstance inst;
    inst.shared_signals = std::move(lt.shared_signals);
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  std::printf("    burst-mode specifications written to ALU1.bms ALU2.bms "
              "MUL1.bms MUL2.bms\n");

  std::printf("\n[4] hazard-free two-level synthesis:\n");
  for (const auto& inst : instances) {
    auto r = synthesize_logic(inst.controller);
    auto st = gate_stats(r, inst.controller.machine.state_count());
    std::printf("    %-5s %s\n", inst.controller.machine.name().c_str(),
                describe(st).c_str());
  }

  std::printf("\n[5] gate-level execution vs the golden model:\n");
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  auto gold = diffeq_reference_registers(init);
  auto sim = run_event_sim(g, global.plan, instances, init, EventSimOptions{});
  if (!sim.completed) {
    std::printf("    simulation failed: %s\n", sim.error.c_str());
    return 1;
  }
  for (const char* r : {"X", "Y", "U"})
    std::printf("    %s = %lld (golden %lld) %s\n", r,
                static_cast<long long>(sim.registers.at(r)),
                static_cast<long long>(gold.at(r)),
                sim.registers.at(r) == gold.at(r) ? "ok" : "MISMATCH");
  std::printf("    %lld datapath operations, finished at t=%lld\n",
              static_cast<long long>(sim.operations),
              static_cast<long long>(sim.finish_time));
  return 0;
}
