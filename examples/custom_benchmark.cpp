// Bring your own benchmark: scheduled CDFGs can be written in a small
// textual language and pushed through the whole flow.  Pass a file name to
// synthesize your own program, or run without arguments for the built-in
// example (an IIR biquad filter section).
//
//   ./build/examples/custom_benchmark [program.adc]

#include <cstdio>
#include <fstream>
#include <sstream>

#include "extract/extract.hpp"
#include "frontend/parser.hpp"
#include "ltrans/local.hpp"
#include "sim/event_sim.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

using namespace adc;

namespace {

const char* kBiquad = R"(program biquad {
  # y[n] = b0*x + b1*z1 + b2*z2 - a1*w1 - a2*w2, direct form II transposed-ish
  fu MUL1 : mul;
  fu MUL2 : mul;
  fu ALU1 : alu;
  loop C on ALU1 {
    MUL1: p0 := x * b0;
    MUL2: p1 := z1 * b1;
    MUL1: p2 := z2 * b2;
    ALU1: s0 := p0 + p1;
    MUL2: q1 := w1 * a1;
    ALU1: s1 := s0 + p2;
    MUL1: q2 := w2 * a2;
    ALU1: s2 := s1 - q1;
    ALU1: y := s2 - q2;
    ALU1: z2 := z1;
    ALU1: z1 := x;
    ALU1: w2 := w1;
    ALU1: w1 := y;
    ALU1: n := n - 1;
    ALU1: C := 0 < n;
  }
})";

}  // namespace

int main(int argc, char** argv) {
  std::string source;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    source = ss.str();
  } else {
    source = kBiquad;
  }

  Cdfg g = parse_program(source);
  std::printf("parsed '%s': %zu nodes, %zu arcs, %zu units\n", g.name().c_str(),
              g.live_node_count(), g.live_arc_count(), g.fu_count());

  // Reference result from the sequential interpretation.
  std::map<std::string, std::int64_t> init{{"x", 5},  {"b0", 2}, {"b1", 3}, {"b2", 1},
                                           {"a1", 1}, {"a2", 2}, {"z1", 1}, {"z2", 2},
                                           {"w1", 1}, {"w2", 1}, {"n", 4},  {"C", 1}};
  auto gold = run_sequential(g, init);

  auto global = run_global_transforms(g);
  std::printf("after GT: %zu controller-controller channels\n",
              global.plan.count_controller_channels());

  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(g, global.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    std::printf("  %-5s %zu states / %zu transitions\n", c.machine.name().c_str(),
                c.machine.state_count(), c.machine.transition_count());
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }

  auto sim = run_event_sim(g, global.plan, instances, init, EventSimOptions{});
  if (!sim.completed) {
    std::printf("simulation failed: %s\n", sim.error.c_str());
    return 1;
  }
  bool all_ok = true;
  for (const auto& [reg, v] : gold) {
    if (!sim.registers.count(reg)) continue;
    if (sim.registers.at(reg) != v) {
      std::printf("MISMATCH %s: %lld vs golden %lld\n", reg.c_str(),
                  static_cast<long long>(sim.registers.at(reg)),
                  static_cast<long long>(v));
      all_ok = false;
    }
  }
  std::printf("gate-level simulation %s at t=%lld (y = %lld)\n",
              all_ok ? "matches the sequential semantics" : "FAILED",
              static_cast<long long>(sim.finish_time),
              static_cast<long long>(sim.registers.count("y") ? sim.registers.at("y") : 0));
  return all_ok ? 0 : 1;
}
