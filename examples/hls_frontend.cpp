// The high-level-synthesis substrate: the paper assumes its input CDFG is
// already scheduled and resource-bound; this example rebuilds that front
// end.  Raw sequential RTL statements go through dependence analysis,
// resource-constrained list scheduling and binding, and the generated
// scheduled CDFG then runs through the full synthesis flow.  Different
// resource budgets yield genuinely different distributed-control systems.
//
//   ./build/examples/hls_frontend

#include <cstdio>

#include "extract/extract.hpp"
#include "ltrans/local.hpp"
#include "report/table.hpp"
#include "sched/scheduler.hpp"
#include "sim/event_sim.hpp"
#include "sim/token_sim.hpp"
#include "transforms/pipeline.hpp"

using namespace adc;

int main() {
  // The DIFFEQ inner loop as a plain statement list — no binding, no
  // schedule, exactly what a compiler front end would hand over.
  HlsProgram program;
  program.name = "diffeq_from_hls";
  program.loop_cond = "C";
  for (const char* t :
       {"B := 2dx + dx", "M1 := U * X1", "M2 := U * dx", "X := X + dx", "A := Y + M1",
        "M1 := A * B", "Y := Y + M2", "X1 := X", "U := U - M1", "C := X < a"})
    program.loop_body.push_back(parse_rtl(t));

  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};

  std::printf("resource sweep for the DIFFEQ loop:\n\n");
  Table t({"resources", "units", "makespan", "channels", "total states", "latency",
           "correct"});

  struct Budget {
    const char* label;
    Resources res;
  };
  for (const Budget b : {Budget{"1 ALU, 1 MUL", {1, 1, 1, 2}},
                         Budget{"2 ALU, 1 MUL", {2, 1, 1, 2}},
                         Budget{"2 ALU, 2 MUL", {2, 2, 1, 2}},
                         Budget{"3 ALU, 2 MUL", {3, 2, 1, 2}}}) {
    // Schedule and bind.
    auto ops = build_dfg(program.loop_body);
    auto sched = list_schedule(ops, b.res);
    Cdfg g = schedule_and_bind(program, b.res);

    auto gold = run_sequential(g, init);

    // Synthesize and simulate.
    auto global = run_global_transforms(g);
    std::vector<ControllerInstance> instances;
    std::size_t states = 0;
    for (auto& c : extract_controllers(g, global.plan)) {
      ControllerInstance inst;
      inst.shared_signals = run_local_transforms(c).shared_signals;
      states += c.machine.state_count();
      inst.controller = std::move(c);
      instances.push_back(std::move(inst));
    }
    EventSimOptions o;
    o.randomize_delays = false;
    auto sim = run_event_sim(g, global.plan, instances, init, o);
    bool correct = sim.completed;
    for (const char* r : {"X", "Y", "U"})
      correct = correct && sim.registers.at(r) == gold.at(r);

    t.add_row({b.label, std::to_string(g.fu_count()), std::to_string(sched.makespan),
               std::to_string(global.plan.count_controller_channels()),
               std::to_string(states), std::to_string(sim.finish_time),
               correct ? "yes" : "NO"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nMore units shorten the schedule but cost controllers and wires —\n"
              "the area/performance trade-off the distributed-control style exposes.\n");
  return 0;
}
