// Design-space exploration — the paper's headline capability.  Transforms
// are individual, composable operations; this example scripts several
// recipes over the DIFFEQ benchmark and prints the area/latency surface so
// a designer can pick a point.
//
// The recipes run on the parallel synthesis runtime (src/runtime/): a
// work-stealing thread pool fans the evaluations out, and the
// content-addressed stage cache lets recipes that share a script prefix
// (most of them do) reuse each other's frontend and transform results.
//
//   ./build/examples/design_space_exploration

#include <cstdio>

#include "report/table.hpp"
#include "runtime/flow.hpp"

using namespace adc;

int main() {
  // Each recipe is one transformation script — that is the point: the
  // transformations are safe primitives a script can compose.
  const std::pair<const char*, const char*> recipes[] = {
      {"baseline (no transforms)", ""},
      {"area-first (GT2+GT4+GT5+LT, no speculation)", "gt2; gt4; gt2; gt5; lt"},
      {"speed-first (all GT, LT without sharing)",
       "gt1; gt2; gt3; gt4; gt2; gt5; lt(no_sharing)"},
      {"conservative timing (no GT3, no ack removal)",
       "gt1; gt2; gt4; gt2; gt5; lt(no_acks)"},
      {"everything (the paper's full recipe)", "gt1; gt2; gt3; gt4; gt2; gt5; lt"},
      {"everything + aggressive broadcasts",
       "gt1; gt2; gt3; gt4; gt2; gt5(broadcast=all); lt"},
  };

  const BuiltinBenchmark* diffeq_bench = find_builtin("diffeq");
  std::vector<FlowRequest> reqs;
  for (const auto& [name, script] : recipes)
    reqs.push_back(make_builtin_request(*diffeq_bench, script));

  ThreadPool pool;  // hardware concurrency
  FlowExecutor exec(&pool);
  std::vector<FlowPoint> points = exec.run_all(reqs);

  std::printf("DIFFEQ design-space exploration (%zu workers)\n\n", pool.size());
  Table t({"recipe", "channels", "total states", "total literals", "latency", "ok"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FlowPoint& p = points[i];
    t.add_row({recipes[i].first, std::to_string(p.channels), std::to_string(p.states),
               std::to_string(p.literals), std::to_string(p.latency),
               p.ok ? "yes" : "NO"});
  }
  std::printf("%s", t.to_string().c_str());

  CacheStats cs = exec.cache().stats();
  std::printf("\nEach recipe is a few lines of script — and because recipes share\n"
              "prefixes, the stage cache reused %llu of %llu stage evaluations.\n",
              static_cast<unsigned long long>(cs.hits + cs.joins),
              static_cast<unsigned long long>(cs.hits + cs.joins + cs.misses));
  return 0;
}
