// Design-space exploration — the paper's headline capability.  Transforms
// are individual, composable operations; this example scripts several
// recipes over the DIFFEQ benchmark and prints the area/latency surface so
// a designer can pick a point.
//
//   ./build/examples/design_space_exploration

#include <cstdio>

#include "extract/extract.hpp"
#include "frontend/benchmarks.hpp"
#include "logic/minimize.hpp"
#include "ltrans/local.hpp"
#include "report/table.hpp"
#include "sim/event_sim.hpp"
#include "transforms/pipeline.hpp"

using namespace adc;

namespace {

struct Recipe {
  std::string name;
  GlobalPipelineOptions global;
  LocalTransformOptions local;
  bool use_lt = true;
};

struct Point {
  std::size_t channels, states, literals;
  std::int64_t latency;
  bool correct;
};

Point evaluate(const Recipe& r) {
  Cdfg g = diffeq();
  auto global = run_global_transforms(g, r.global);
  std::vector<ControllerInstance> instances;
  Point p{};
  p.channels = global.plan.count_controller_channels();
  for (auto& c : extract_controllers(g, global.plan)) {
    ControllerInstance inst;
    if (r.use_lt) inst.shared_signals = run_local_transforms(c, r.local).shared_signals;
    p.states += c.machine.state_count();
    p.literals += synthesize_logic(c).literal_count(true);
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }
  std::map<std::string, std::int64_t> init{{"X", 0}, {"a", 8}, {"dx", 1},
                                           {"U", 3},  {"Y", 1}, {"X1", 0}, {"C", 1}};
  EventSimOptions o;
  o.randomize_delays = false;
  auto sim = run_event_sim(g, global.plan, instances, init, o);
  p.latency = sim.finish_time;
  p.correct = sim.completed;
  return p;
}

}  // namespace

int main() {
  std::vector<Recipe> recipes;

  {
    Recipe r;
    r.name = "baseline (no transforms)";
    r.global.gt1 = false;
    r.global.gt2 = false;
    r.global.gt3 = false;
    r.global.gt4 = false;
    r.global.gt5 = false;
    r.use_lt = false;
    recipes.push_back(r);
  }
  {
    Recipe r;
    r.name = "area-first (GT2+GT4+GT5+LT, no speculation)";
    r.global.gt1 = false;  // no loop overlap
    r.global.gt3 = false;  // no relative-timing bets
    recipes.push_back(r);
  }
  {
    Recipe r;
    r.name = "speed-first (all GT, LT without sharing)";
    r.local.lt5_signal_sharing = false;
    recipes.push_back(r);
  }
  {
    Recipe r;
    r.name = "conservative timing (no GT3, no ack removal)";
    r.global.gt3 = false;
    r.local.lt4_remove_acks = false;
    recipes.push_back(r);
  }
  {
    Recipe r;
    r.name = "everything (the paper's full recipe)";
    recipes.push_back(r);
  }
  {
    Recipe r;
    r.name = "everything + aggressive broadcasts";
    r.global.gt5_options.same_source = Gt5Options::SameSource::kAll;
    recipes.push_back(r);
  }

  std::printf("DIFFEQ design-space exploration\n\n");
  Table t({"recipe", "channels", "total states", "total literals", "latency", "ok"});
  for (const auto& r : recipes) {
    Point p = evaluate(r);
    t.add_row({r.name, std::to_string(p.channels), std::to_string(p.states),
               std::to_string(p.literals), std::to_string(p.latency),
               p.correct ? "yes" : "NO"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("\nEach recipe is a few lines of code — that is the point: the\n"
              "transformations are safe primitives a script can compose.\n");
  return 0;
}
