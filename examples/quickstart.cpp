// Quickstart: describe a small scheduled RTL program, run the whole
// synthesis flow, and watch the synthesized distributed controllers
// execute it.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "extract/extract.hpp"
#include "frontend/builder.hpp"
#include "ltrans/local.hpp"
#include "sim/event_sim.hpp"
#include "transforms/pipeline.hpp"
#include "xbm/print.hpp"

using namespace adc;

int main() {
  // 1. A scheduled, resource-bound program: one ALU and one multiplier
  //    computing r = (a+b)*(a-b) with the two additions on the ALU.
  ProgramBuilder builder("quickstart");
  FuId alu = builder.fu("ALU1", "alu");
  FuId mul = builder.fu("MUL1", "mul");
  builder.stmt(alu, "s := a + b");
  builder.stmt(alu, "d := a - b");
  builder.stmt(mul, "r := s * d");
  Cdfg graph = builder.finish();
  std::printf("CDFG: %zu nodes, %zu constraint arcs\n", graph.live_node_count(),
              graph.live_arc_count());

  // 2. Global transformations (GT1-GT5) optimize the controller-controller
  //    communication; the channel plan maps constraint arcs onto wires.
  auto global = run_global_transforms(graph);
  std::printf("channels after GT: %zu controller-controller, %zu total\n",
              global.plan.count_controller_channels(),
              global.plan.count_all_channels());

  // 3. Extract one burst-mode controller per functional unit and apply the
  //    local transformations (LT1-LT5).
  std::vector<ControllerInstance> instances;
  for (auto& c : extract_controllers(graph, global.plan)) {
    ControllerInstance inst;
    inst.shared_signals = run_local_transforms(c).shared_signals;
    std::printf("\ncontroller %s: %zu states, %zu transitions\n",
                c.machine.name().c_str(), c.machine.state_count(),
                c.machine.transition_count());
    std::printf("%s", to_text(c.machine).c_str());
    inst.controller = std::move(c);
    instances.push_back(std::move(inst));
  }

  // 4. Simulate the synthesized system gate-level against the datapath.
  std::map<std::string, std::int64_t> init{{"a", 7}, {"b", 3}};
  auto result = run_event_sim(graph, global.plan, instances, init, EventSimOptions{});
  if (!result.completed) {
    std::printf("simulation failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("\nsimulated: r = %lld (expected %d), finished at t=%lld\n",
              static_cast<long long>(result.registers.at("r")), (7 + 3) * (7 - 3),
              static_cast<long long>(result.finish_time));
  return 0;
}
